package experiments

import (
	"fmt"
	"strings"

	"hercules/internal/cluster"
	"hercules/internal/fleet"
	"hercules/internal/scenario"
)

// The scenario experiment extends the Fig. 13-online replay from the
// smooth diurnal day to the non-stationary traffic that dominates real
// at-scale serving: flash crowds, regional failover and capacity loss
// (internal/scenario). Steady-state numbers are misleading under these
// regimes — the HPC characterization literature makes the same point
// for batch clusters — so the driver scores every router with and
// without the online autoscaler under each named scenario and reports
// what queries experienced: SLA-violation minutes, drops, shed traffic
// and peak tails.

// ScenarioNames are the scenarios the driver sweeps, baseline first so
// every other row reads as a divergence from it.
var ScenarioNames = []string{"baseline", "flashcrowd", "regionshift", "failure"}

// ScenarioRouters are the routing policies compared under each
// scenario: the load-oblivious baseline and the two strongest
// state-aware policies from the Fig. 13-online comparison.
var ScenarioRouters = []fleet.RouterKind{fleet.RoundRobin, fleet.PowerOfTwo, fleet.WeightedHetero}

// scenarioOpts lowers the per-interval query budget so the full
// scenario × router × autoscaler sweep stays interactive.
func scenarioOpts(seed int64) fleet.Options {
	opts := fleet.DefaultOptions()
	opts.MaxQueriesPerInterval = 25000
	opts.Seed = seed
	return opts
}

// ScenarioDay replays one diurnal day under the named scenario with the
// given router, provisioning with the Hercules LP policy (autoscale
// toggles the online autoscaler). It shares the memoized calibration
// table with the Fig. 13-online experiment.
func ScenarioDay(name string, router fleet.RouterKind, autoscale bool, seed int64) (fleet.DayResult, error) {
	sc, err := scenario.Named(name)
	if err != nil {
		return fleet.DayResult{}, err
	}
	table, err := FleetTable()
	if err != nil {
		return fleet.DayResult{}, err
	}
	ws := FleetWorkloads(table, seed)
	eng := fleet.NewEngine(FleetFleet(), table, cluster.Hercules, router, scenarioOpts(seed))
	eng.Provisioner.OverProvisionR = 0.15
	if !autoscale {
		eng.Scaler = nil
	}
	if err := eng.ApplyScenario(sc, ws); err != nil {
		return fleet.DayResult{}, err
	}
	return eng.RunDay(ws)
}

// ScenarioRow is one cell of the sweep.
type ScenarioRow struct {
	Autoscaled bool
	Day        fleet.DayResult
}

// FigScenariosResult holds the scenario × router × autoscaler sweep.
type FigScenariosResult struct {
	Rows []ScenarioRow
}

// FigScenarios replays every named scenario for every scenario router,
// with and without the online autoscaler.
func FigScenarios(seed int64) (FigScenariosResult, error) {
	var res FigScenariosResult
	for _, name := range ScenarioNames {
		for _, r := range ScenarioRouters {
			for _, autoscale := range []bool{false, true} {
				day, err := ScenarioDay(name, r, autoscale, seed)
				if err != nil {
					return res, err
				}
				res.Rows = append(res.Rows, ScenarioRow{Autoscaled: autoscale, Day: day})
			}
		}
	}
	return res, nil
}

// Baseline returns the baseline-scenario row matching the given row's
// router and autoscaler setting (the divergence reference).
func (r FigScenariosResult) Baseline(row ScenarioRow) (ScenarioRow, bool) {
	for _, b := range r.Rows {
		if b.Day.Scenario == "baseline" && b.Day.Router == row.Day.Router &&
			b.Autoscaled == row.Autoscaled {
			return b, true
		}
	}
	return ScenarioRow{}, false
}

// Render implements Renderer.
func (r FigScenariosResult) Render() string {
	var sb strings.Builder
	header(&sb, "Scenarios: non-stationary traffic, routers x autoscaler (hercules provisioning)")
	sb.WriteString("scenario\trouter\tautoscale\tsla_viol_min\tdrop_pct\tshed_pct\tmax_p99_ms\tearly_reprov\tenergy_MJ\n")
	for _, row := range r.Rows {
		d := row.Day
		total := d.TotalQueries + d.TotalShed
		shedPct := 0.0
		if total > 0 {
			shedPct = 100 * float64(d.TotalShed) / float64(total)
		}
		onOff := "off"
		if row.Autoscaled {
			onOff = "on"
		}
		fmt.Fprintf(&sb, "%s\t%s\t%s\t%.1f\t%.2f\t%.2f\t%.1f\t%d\t%.1f\n",
			d.Scenario, d.Router, onOff, d.SLAViolationMin, d.DropFrac*100,
			shedPct, d.MaxP99MS, d.EarlyReprovisions, d.EnergyKJ/1e3)
	}
	// Divergence summary: how much damage each scenario adds over its
	// matched baseline, and what the autoscaler claws back.
	for _, name := range ScenarioNames {
		if name == "baseline" {
			continue
		}
		var worst, worstScaled float64
		for _, row := range r.Rows {
			if row.Day.Scenario != name {
				continue
			}
			if base, ok := r.Baseline(row); ok {
				delta := row.Day.SLAViolationMin - base.Day.SLAViolationMin
				if row.Autoscaled {
					worstScaled = max(worstScaled, delta)
				} else {
					worst = max(worst, delta)
				}
			}
		}
		fmt.Fprintf(&sb, "%s: worst added violation %.1f min without autoscaler, %.1f with\n",
			name, worst, worstScaled)
	}
	return sb.String()
}
