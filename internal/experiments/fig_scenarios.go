package experiments

import (
	"fmt"
	"strings"

	"hercules/internal/fleet"
)

// The scenario experiment extends the Fig. 13-online replay from the
// smooth diurnal day to the non-stationary traffic that dominates real
// at-scale serving: flash crowds, regional failover and capacity loss
// (internal/scenario). Steady-state numbers are misleading under these
// regimes — the HPC characterization literature makes the same point
// for batch clusters — so the driver scores every router with and
// without the online autoscaler under each named scenario and reports
// what queries experienced: SLA-violation minutes, drops, shed traffic
// and peak tails.

// ScenarioNames are the scenarios the driver sweeps, baseline first so
// every other row reads as a divergence from it.
var ScenarioNames = []string{"baseline", "flashcrowd", "regionshift", "failure"}

// ScenarioRouters are the routing policies compared under each
// scenario: the load-oblivious baseline and the two strongest
// state-aware policies from the Fig. 13-online comparison.
var ScenarioRouters = []string{fleet.RoundRobin, fleet.PowerOfTwo, fleet.WeightedHetero}

// ScenarioPolicyCells are the registry-selected serving policies the
// sweep additionally scores under every scenario (on the p2c router):
// the target-utilization proportional autoscaler and the
// deadline-aware admission shedder — the two policies that ship
// through the policy registry rather than the engine's built-in
// defaults.
var ScenarioPolicyCells = []struct{ Scaler, Admission string }{
	{Scaler: "prop"},
	{Scaler: "breach", Admission: "deadline"},
}

// ScenarioSpec is the sweep's run spec for one cell: the Fig.
// 13-online configuration with the per-interval query budget lowered
// so the full scenario × router × policy sweep stays interactive, the
// shard pinning released (scenario rows score whole-pool routing under
// disruption, and the sweep is not a benchmark subject), and the named
// scenario injected through the spec.
func ScenarioSpec(name, router string, seed int64) fleet.Spec {
	spec := fleet.DefaultSpec()
	spec.Router = router
	spec.Models = append([]string(nil), FleetModels...)
	spec.Scenario = name
	spec.Options.MaxQueriesPerInterval = 25000
	spec.Options.Seed = seed
	return spec
}

// ScenarioDay replays one diurnal day under the named scenario with the
// given router, provisioning with the Hercules LP policy (autoscale
// toggles the online autoscaler). It shares the memoized calibration
// table with the Fig. 13-online experiment.
func ScenarioDay(name, router string, autoscale bool, seed int64) (fleet.DayResult, error) {
	spec := ScenarioSpec(name, router, seed)
	if !autoscale {
		spec.Scaler = "none"
	}
	return runFleetSpec(spec, seed)
}

// ScenarioRow is one cell of the sweep.
type ScenarioRow struct {
	Autoscaled bool
	Day        fleet.DayResult
}

// FigScenariosResult holds the scenario × router × autoscaler sweep.
type FigScenariosResult struct {
	Rows []ScenarioRow
}

// FigScenarios replays every named scenario for every scenario router,
// with and without the online autoscaler, plus one row per
// ScenarioPolicyCells entry (proportional autoscaler, deadline
// admission) on the p2c router.
func FigScenarios(seed int64) (FigScenariosResult, error) {
	var res FigScenariosResult
	for _, name := range ScenarioNames {
		for _, r := range ScenarioRouters {
			for _, autoscale := range []bool{false, true} {
				day, err := ScenarioDay(name, r, autoscale, seed)
				if err != nil {
					return res, err
				}
				res.Rows = append(res.Rows, ScenarioRow{Autoscaled: autoscale, Day: day})
			}
		}
		for _, cell := range ScenarioPolicyCells {
			spec := ScenarioSpec(name, fleet.PowerOfTwo, seed)
			spec.Scaler = cell.Scaler
			if cell.Admission != "" {
				spec.Admission = cell.Admission
			}
			day, err := runFleetSpec(spec, seed)
			if err != nil {
				return res, err
			}
			res.Rows = append(res.Rows, ScenarioRow{Autoscaled: true, Day: day})
		}
	}
	return res, nil
}

// Baseline returns the baseline-scenario row matching the given row's
// router, autoscaler setting and serving policies (the divergence
// reference).
func (r FigScenariosResult) Baseline(row ScenarioRow) (ScenarioRow, bool) {
	for _, b := range r.Rows {
		if b.Day.Scenario == "baseline" && b.Day.Router == row.Day.Router &&
			b.Autoscaled == row.Autoscaled &&
			b.Day.Scaler == row.Day.Scaler && b.Day.Admission == row.Day.Admission {
			return b, true
		}
	}
	return ScenarioRow{}, false
}

// Render implements Renderer.
func (r FigScenariosResult) Render() string {
	var sb strings.Builder
	header(&sb, "Scenarios: non-stationary traffic, routers x autoscaler x serving policies (hercules provisioning)")
	sb.WriteString("scenario\trouter\tscaler\tadmission\tsla_viol_min\tdrop_pct\tshed_pct\tmax_p99_ms\tearly_reprov\tenergy_MJ\n")
	for _, row := range r.Rows {
		d := row.Day
		total := d.TotalQueries + d.TotalShed
		shedPct := 0.0
		if total > 0 {
			shedPct = 100 * float64(d.TotalShed) / float64(total)
		}
		scaler := d.Scaler
		if scaler == "" {
			scaler = "off"
		}
		admission := d.Admission
		if admission == "" {
			admission = "-"
		}
		fmt.Fprintf(&sb, "%s\t%s\t%s\t%s\t%.1f\t%.2f\t%.2f\t%.1f\t%d\t%.1f\n",
			d.Scenario, d.Router, scaler, admission, d.SLAViolationMin, d.DropFrac*100,
			shedPct, d.MaxP99MS, d.EarlyReprovisions, d.EnergyKJ/1e3)
	}
	// Divergence summary: how much damage each scenario adds over its
	// matched baseline, and what the autoscaler claws back.
	for _, name := range ScenarioNames {
		if name == "baseline" {
			continue
		}
		var worst, worstScaled float64
		for _, row := range r.Rows {
			if row.Day.Scenario != name {
				continue
			}
			if base, ok := r.Baseline(row); ok {
				delta := row.Day.SLAViolationMin - base.Day.SLAViolationMin
				if row.Autoscaled {
					worstScaled = max(worstScaled, delta)
				} else {
					worst = max(worst, delta)
				}
			}
		}
		fmt.Fprintf(&sb, "%s: worst added violation %.1f min without autoscaler, %.1f with\n",
			name, worst, worstScaled)
	}
	return sb.String()
}
