package experiments

import (
	"fmt"
	"strings"
	"sync"

	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/sched"
	"hercules/internal/sim"
)

// Fig4Result reproduces Fig. 4: host-side latency-bounded throughput,
// energy efficiency and CPU utilization of DLRM-RMC1 under 20×1
// (DeepRecSys) vs 10×2 thread/core configurations across SLA targets.
type Fig4Result struct {
	Rows []Fig4Row
}

// Fig4Row is one (config, SLA) measurement.
type Fig4Row struct {
	Config     string
	SLAMS      float64
	QPS        float64
	QPSPerWatt float64
	CPUUtil    float64
}

// Fig4HostParallelism runs the experiment on server T2.
func Fig4HostParallelism(seed int64) Fig4Result {
	m := model.DLRMRMC1(model.Prod)
	s := sim.New(hw.ServerType("T2"), m)
	configs := []struct {
		name               string
		threads, opWorkers int
	}{
		{"20x1 (DeepRecSys)", 20, 1},
		{"10x2", 10, 2},
	}
	var res Fig4Result
	for _, sla := range []float64{5, 10, 15, 20, 30, 50} {
		for _, c := range configs {
			cap0, _ := bestBatchCapacity(s, func(b int) sim.Config {
				return sim.Config{Place: sim.PlaceCPUModel, Threads: c.threads,
					OpWorkers: c.opWorkers, Batch: b}
			}, sla, seed)
			res.Rows = append(res.Rows, Fig4Row{
				Config:     c.name,
				SLAMS:      sla,
				QPS:        cap0.QPS,
				QPSPerWatt: cap0.At.QPSPerWatt,
				CPUUtil:    cap0.At.CPUUtil,
			})
		}
	}
	return res
}

// Render implements Renderer.
func (r Fig4Result) Render() string {
	var sb strings.Builder
	header(&sb, "Fig. 4: DLRM-RMC1 on T2 — 20x1 vs 10x2 across SLA targets")
	sb.WriteString("config\tsla_ms\tQPS\tQPS/W\tcpu_util\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%s\t%.0f\t%.0f\t%.2f\t%.2f\n",
			row.Config, row.SLAMS, row.QPS, row.QPSPerWatt, row.CPUUtil)
	}
	return sb.String()
}

// Fig6Result reproduces Fig. 6: accelerator-side scheduling policies —
// no co-location/no fusion (DeepRecSys), co-location only (Baymax), and
// co-location + query fusion (Hercules's contrived combination).
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6Row is one (model, policy, SLA) point.
type Fig6Row struct {
	Model      string
	Policy     string
	SLAMS      float64
	QPS        float64
	QPSPerWatt float64
	CoLocated  int
	Fusion     int
}

// Fig6AcceleratorPolicies runs the three policies on T7 with the small
// model variants (§III-B: model-based scheduling on a 16 GB V100).
func Fig6AcceleratorPolicies(seed int64) Fig6Result {
	var res Fig6Result
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, name := range []string{"DLRM-RMC3", "MT-WnD", "DIN"} {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			m, err := model.ByName(name, model.Small)
			if err != nil {
				panic(err)
			}
			s := sim.New(hw.ServerType("T7"), m)
			for _, sla := range []float64{20, 50, 100} {
				rows := fig6Policies(s, name, sla, seed)
				mu.Lock()
				res.Rows = append(res.Rows, rows...)
				mu.Unlock()
			}
		}(name)
	}
	wg.Wait()
	return res
}

func fig6Policies(s *sim.Server, name string, sla float64, seed int64) []Fig6Row {
	var rows []Fig6Row
	record := func(policy string, cfg sim.Config, cap0 sim.Capacity) {
		rows = append(rows, Fig6Row{
			Model: name, Policy: policy, SLAMS: sla,
			QPS: cap0.QPS, QPSPerWatt: cap0.At.QPSPerWatt,
			CoLocated: cfg.AccelThreads, Fusion: cfg.FusionLimit,
		})
	}
	// DeepRecSys: single thread, no fusion.
	drs := sim.Config{Place: sim.PlaceAccelModel, AccelThreads: 1, Batch: 1024,
		SparseThreads: 1, SparseWorkers: 1}
	c0, _ := s.FindCapacity(drs, sla, seed)
	record("DeepRecSys", drs, c0)

	// Baymax: co-location sweep, no fusion.
	var bmBest sim.Capacity
	var bmCfg sim.Config
	hint := c0.QPS
	for mcl := 1; mcl <= 6; mcl++ {
		cfg := drs
		cfg.AccelThreads = mcl
		c, _ := s.FindCapacityHint(cfg, sla, seed, hint)
		if c.QPS > bmBest.QPS {
			bmBest, bmCfg = c, cfg
		}
		if c.QPS > 0 {
			hint = c.QPS
		}
	}
	record("Baymax", bmCfg, bmBest)

	// Co-location + fusion: sweep both.
	var fuBest sim.Capacity
	var fuCfg sim.Config
	for mcl := 1; mcl <= 6; mcl += 1 {
		for _, fl := range []int{1000, 2000, 4000, 6000} {
			cfg := drs
			cfg.AccelThreads = mcl
			cfg.FusionLimit = fl
			c, _ := s.FindCapacityHint(cfg, sla, seed, hint)
			if c.QPS > fuBest.QPS {
				fuBest, fuCfg = c, cfg
			}
			if c.QPS > 0 {
				hint = c.QPS
			}
		}
	}
	record("CoLoc+Fusion", fuCfg, fuBest)
	return rows
}

// Render implements Renderer.
func (r Fig6Result) Render() string {
	var sb strings.Builder
	header(&sb, "Fig. 6: accelerator task-scheduling policies on T7 (small models)")
	sb.WriteString("model\tpolicy\tsla_ms\tQPS\tQPS/W\tco_located\tfusion\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%s\t%s\t%.0f\t%.0f\t%.2f\t%d\t%d\n",
			row.Model, row.Policy, row.SLAMS, row.QPS, row.QPSPerWatt,
			row.CoLocated, row.Fusion)
	}
	return sb.String()
}

// Fig7Result reproduces Fig. 7: latency breakdown (queuing, data
// loading, inference) and GPU utilization vs the query-fusion limit.
type Fig7Result struct {
	Rows []Fig7Row
}

// Fig7Row is one (model, fusion limit) measurement at fixed load.
type Fig7Row struct {
	Model       string
	FusionLimit int // 0 = no fusion
	QueueFrac   float64
	LoadFrac    float64
	ComputeFrac float64
	GPUUtil     float64
	TailMS      float64
}

// Fig7FusionBreakdown sweeps the fusion limit for RMC3/MT-WnD/DIN with a
// single inference thread on one V100, at 70% of the no-fusion capacity.
func Fig7FusionBreakdown(seed int64) Fig7Result {
	var res Fig7Result
	for _, name := range []string{"DLRM-RMC3", "MT-WnD", "DIN"} {
		m, err := model.ByName(name, model.Small)
		if err != nil {
			panic(err)
		}
		s := sim.New(hw.ServerType("T7"), m)
		base := sim.Config{Place: sim.PlaceAccelModel, AccelThreads: 1, Batch: 1024,
			SparseThreads: 1, SparseWorkers: 1}
		cap0, _ := s.FindCapacity(base, m.SLATargetMS, seed)
		rate := cap0.QPS * 0.7
		if rate < 8 {
			rate = 8
		}
		for _, fl := range []int{0, 500, 1000, 2000, 4000, 6000} {
			cfg := base
			cfg.FusionLimit = fl
			r, err := s.Evaluate(cfg, rate, seed)
			if err != nil {
				continue
			}
			total := r.QueueMS + r.LoadMS + r.ComputeMS
			if total <= 0 {
				total = 1
			}
			res.Rows = append(res.Rows, Fig7Row{
				Model:       name,
				FusionLimit: fl,
				QueueFrac:   r.QueueMS / total,
				LoadFrac:    r.LoadMS / total,
				ComputeFrac: r.ComputeMS / total,
				GPUUtil:     r.GPUUtil,
				TailMS:      r.TailMS,
			})
		}
	}
	return res
}

// Render implements Renderer.
func (r Fig7Result) Render() string {
	var sb strings.Builder
	header(&sb, "Fig. 7: latency breakdown and GPU utilization vs fusion limit (T7)")
	sb.WriteString("model\tfusion\tqueue%\tload%\tinfer%\tgpu_util\ttail_ms\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%s\t%d\t%.0f\t%.0f\t%.0f\t%.2f\t%.1f\n",
			row.Model, row.FusionLimit, row.QueueFrac*100, row.LoadFrac*100,
			row.ComputeFrac*100, row.GPUUtil, row.TailMS)
	}
	return sb.String()
}

// Fig11Result reproduces Fig. 11: the convex Psp surfaces of model-based
// scheduling on CPU (a–c) and accelerator (d–f), plus the gradient
// search path overlay.
type Fig11Result struct {
	CPURows  []Fig11Row
	GPURows  []Fig11Row
	PathCPU  []string // visited configs in order (search-path overlay)
	PathEval int      // configurations measured by the gradient search
	GridEval int      // configurations in the full surface sweep
}

// Fig11Row is one grid point of the parallelism surface.
type Fig11Row struct {
	Engine    string // "cpu" | "gpu"
	Threads   int    // co-located tasks
	OpWorkers int    // CPU only
	Batch     int    // batch size / fusion limit
	QPS       float64
	TailMS    float64
	PowerW    float64
}

// Fig11ParallelismSpace sweeps the DLRM-RMC1 surfaces on T2 and T7.
func Fig11ParallelismSpace(seed int64) Fig11Result {
	m := model.DLRMRMC1(model.Prod)
	var res Fig11Result

	// CPU surface: o ∈ {1,2,4}, m sweep, batch sweep.
	sCPU := sim.New(hw.ServerType("T2"), m)
	sla := m.SLATargetMS
	for _, o := range []int{1, 2, 4} {
		for _, threads := range []int{1, 2, 4, 8, 12, 16, 20} {
			if threads*o > 20 {
				continue
			}
			hint := 0.0
			for _, b := range []int{32, 128, 512} {
				cfg := sim.Config{Place: sim.PlaceCPUModel, Threads: threads, OpWorkers: o, Batch: b}
				c, err := sCPU.FindCapacityHint(cfg, sla, seed, hint)
				if err != nil {
					continue
				}
				res.GridEval++
				if c.QPS > 0 {
					hint = c.QPS
				}
				res.CPURows = append(res.CPURows, Fig11Row{
					Engine: "cpu", Threads: threads, OpWorkers: o, Batch: b,
					QPS: c.QPS, TailMS: c.At.TailMS, PowerW: c.At.ProvisionedW,
				})
			}
		}
	}

	// GPU surface: co-location × fusion (small variant fits the V100).
	mS := model.DLRMRMC1(model.Small)
	sGPU := sim.New(hw.ServerType("T7"), mS)
	for _, threads := range []int{1, 2, 3, 4} {
		hint := 0.0
		for _, fl := range []int{500, 1000, 2000, 4000, 6000} {
			cfg := sim.Config{Place: sim.PlaceAccelModel, AccelThreads: threads,
				Batch: 1024, SparseThreads: 1, SparseWorkers: 1, FusionLimit: fl}
			c, err := sGPU.FindCapacityHint(cfg, sla, seed, hint)
			if err != nil {
				continue
			}
			res.GridEval++
			if c.QPS > 0 {
				hint = c.QPS
			}
			res.GPURows = append(res.GPURows, Fig11Row{
				Engine: "gpu", Threads: threads, Batch: fl,
				QPS: c.QPS, TailMS: c.At.TailMS, PowerW: c.At.ProvisionedW,
			})
		}
	}

	// Gradient search path (Fig. 11's red-dot overlay).
	sr := sched.NewSearcher(sCPU, sched.Objective{SLAMS: sla, Seed: seed})
	sr.CollectTrace = true
	sr.SearchCPUModel(false)
	res.PathEval = sr.Evals
	for _, e := range sr.Trace {
		res.PathCPU = append(res.PathCPU,
			fmt.Sprintf("%dx%d@%d->%.0f", e.Cfg.Threads, e.Cfg.OpWorkers, e.Cfg.Batch, e.QPS()))
	}
	return res
}

// Render implements Renderer.
func (r Fig11Result) Render() string {
	var sb strings.Builder
	header(&sb, "Fig. 11: Psp(M+D+O) surfaces for DLRM-RMC1 (CPU T2, GPU T7)")
	sb.WriteString("engine\tthreads\tworkers\tbatch/fusion\tQPS\ttail_ms\tpower_W\n")
	for _, rows := range [][]Fig11Row{r.CPURows, r.GPURows} {
		for _, row := range rows {
			fmt.Fprintf(&sb, "%s\t%d\t%d\t%d\t%.0f\t%.1f\t%.0f\n",
				row.Engine, row.Threads, row.OpWorkers, row.Batch, row.QPS, row.TailMS, row.PowerW)
		}
	}
	fmt.Fprintf(&sb, "gradient path (%d evals vs %d grid points): %s\n",
		r.PathEval, r.GridEval, strings.Join(r.PathCPU, " "))
	return sb.String()
}

// Fig12Result reproduces Fig. 12: the S-D pipeline balance search on CPU
// and CPU-accelerator platforms.
type Fig12Result struct {
	CPURows   []Fig12Row
	AccelRows []Fig12Row
}

// Fig12Row is one pipeline-balance point.
type Fig12Row struct {
	Platform      string
	SparseThreads int
	SparseWorkers int
	DenseThreads  int // CPU dense threads or GPU co-located threads
	QPS           float64
	TailMS        float64
}

// Fig12SDPipeline sweeps the sparse/dense thread split.
func Fig12SDPipeline(seed int64) Fig12Result {
	var res Fig12Result
	m := model.DLRMRMC1(model.Prod)
	sCPU := sim.New(hw.ServerType("T2"), m)
	// CPU: sparse threads × 2 cores; dense threads take the rest.
	hint := 0.0
	for st := 1; st <= 9; st++ {
		dense := 20 - st*2
		if dense < 1 {
			break
		}
		cfg := sim.Config{Place: sim.PlaceCPUSD, SparseThreads: st, SparseWorkers: 2,
			Threads: dense, OpWorkers: 1, Batch: 256}
		c, err := sCPU.FindCapacityHint(cfg, m.SLATargetMS, seed, hint)
		if err != nil {
			continue
		}
		if c.QPS > 0 {
			hint = c.QPS
		}
		res.CPURows = append(res.CPURows, Fig12Row{
			Platform: "cpu", SparseThreads: st, SparseWorkers: 2, DenseThreads: dense,
			QPS: c.QPS, TailMS: c.At.TailMS,
		})
	}
	// CPU-accelerator: host SparseNet threads bound the GPU DenseNet.
	sGPU := sim.New(hw.ServerType("T7"), m)
	hint = 0
	for _, st := range []int{1, 2, 4, 8, 12, 16, 20} {
		cfg := sim.Config{Place: sim.PlaceAccelSD, SparseThreads: st, SparseWorkers: 1,
			AccelThreads: 2, Batch: 1024, FusionLimit: 2000}
		c, err := sGPU.FindCapacityHint(cfg, m.SLATargetMS, seed, hint)
		if err != nil {
			continue
		}
		if c.QPS > 0 {
			hint = c.QPS
		}
		res.AccelRows = append(res.AccelRows, Fig12Row{
			Platform: "cpu-accel", SparseThreads: st, SparseWorkers: 1, DenseThreads: 2,
			QPS: c.QPS, TailMS: c.At.TailMS,
		})
	}
	return res
}

// Render implements Renderer.
func (r Fig12Result) Render() string {
	var sb strings.Builder
	header(&sb, "Fig. 12: S-D pipeline balance (DLRM-RMC1)")
	sb.WriteString("platform\tsparse\tworkers\tdense\tQPS\ttail_ms\n")
	for _, rows := range [][]Fig12Row{r.CPURows, r.AccelRows} {
		for _, row := range rows {
			fmt.Fprintf(&sb, "%s\t%d\t%d\t%d\t%.0f\t%.1f\n",
				row.Platform, row.SparseThreads, row.SparseWorkers, row.DenseThreads,
				row.QPS, row.TailMS)
		}
	}
	return sb.String()
}

// Fig14Result reproduces Fig. 14: baseline vs Hercules task scheduler
// across six models, four server types and SLA scales.
type Fig14Result struct {
	Rows []Fig14Row
}

// Fig14Row is one (model, server, SLA) comparison.
type Fig14Row struct {
	Model       string
	Server      string
	SLAMS       float64
	BaselineQPS float64
	HerculesQPS float64
	Speedup     float64
}

// Fig14Servers lists the server types in the paper's figure.
var Fig14Servers = []string{"T2", "T3", "T7", "T8"}

// Fig14TaskSchedulerSpeedup runs the comparison. slaScales multiplies
// each model's default SLA (the paper sweeps the SLA axis).
func Fig14TaskSchedulerSpeedup(seed int64, slaScales []float64) Fig14Result {
	if len(slaScales) == 0 {
		slaScales = []float64{0.5, 1, 2}
	}
	type job struct {
		m     *model.Model
		srv   string
		scale float64
	}
	var jobs []job
	for _, m := range model.Zoo(model.Prod) {
		for _, srv := range Fig14Servers {
			for _, sc := range slaScales {
				jobs = append(jobs, job{m, srv, sc})
			}
		}
	}
	rows := make([]Fig14Row, len(jobs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, 8)
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			s := sim.New(hw.ServerType(j.srv), j.m)
			obj := sched.Objective{SLAMS: j.m.SLATargetMS * j.scale, Seed: seed}
			sr := sched.NewSearcher(s, obj)
			base := sr.SearchBaseline()
			herc := sr.SearchHercules()
			row := Fig14Row{
				Model: j.m.Name, Server: j.srv, SLAMS: obj.SLAMS,
				BaselineQPS: base.QPS(), HerculesQPS: herc.QPS(),
			}
			if base.QPS() > 0 {
				row.Speedup = herc.QPS() / base.QPS()
			}
			rows[i] = row
		}(i, j)
	}
	wg.Wait()
	return Fig14Result{Rows: rows}
}

// PairRange summarizes speedups for one (model, server) pair across
// the SLA sweep — the "1.28-1.82x" style annotations of Fig. 14.
type PairRange struct {
	Model, Server string
	Min, Max      float64
}

// PairRanges groups rows by (model, server).
func (r Fig14Result) PairRanges() []PairRange {
	idx := map[[2]string]int{}
	var out []PairRange
	for _, row := range r.Rows {
		if row.Speedup <= 0 {
			continue
		}
		k := [2]string{row.Model, row.Server}
		i, ok := idx[k]
		if !ok {
			idx[k] = len(out)
			out = append(out, PairRange{Model: row.Model, Server: row.Server,
				Min: row.Speedup, Max: row.Speedup})
			continue
		}
		if row.Speedup < out[i].Min {
			out[i].Min = row.Speedup
		}
		if row.Speedup > out[i].Max {
			out[i].Max = row.Speedup
		}
	}
	return out
}

// MaxSpeedup returns the largest Hercules/baseline speedup observed.
func (r Fig14Result) MaxSpeedup() (Fig14Row, float64) {
	var best Fig14Row
	for _, row := range r.Rows {
		if row.Speedup > best.Speedup {
			best = row
		}
	}
	return best, best.Speedup
}

// MinSpeedup returns the smallest (non-zero-baseline) speedup.
func (r Fig14Result) MinSpeedup() float64 {
	min := 0.0
	for _, row := range r.Rows {
		if row.Speedup > 0 && (min == 0 || row.Speedup < min) {
			min = row.Speedup
		}
	}
	return min
}

// Render implements Renderer.
func (r Fig14Result) Render() string {
	var sb strings.Builder
	header(&sb, "Fig. 14: baseline (DeepRecSys/Baymax) vs Hercules task scheduler")
	sb.WriteString("model\tserver\tsla_ms\tbaseline_QPS\thercules_QPS\tspeedup\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "%s\t%s\t%.0f\t%.0f\t%.0f\t%.2fx\n",
			row.Model, row.Server, row.SLAMS, row.BaselineQPS, row.HerculesQPS, row.Speedup)
	}
	sb.WriteString("per-pair speedup ranges (cf. the paper's Fig. 14 annotations):\n")
	for _, pr := range r.PairRanges() {
		fmt.Fprintf(&sb, "  %s on %s: %.2fx - %.2fx\n", pr.Model, pr.Server, pr.Min, pr.Max)
	}
	best, max := r.MaxSpeedup()
	fmt.Fprintf(&sb, "speedup range: %.2fx - %.2fx (max: %s on %s)\n",
		r.MinSpeedup(), max, best.Model, best.Server)
	return sb.String()
}
