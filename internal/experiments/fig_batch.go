package experiments

import (
	"fmt"
	"strings"

	"hercules/internal/cluster"
	"hercules/internal/fleet"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
	"hercules/internal/scenario"
	"hercules/internal/stats"
	"hercules/internal/workload"
)

// The batching experiment extends the Fig. 13-online replay with the
// serving lever the paper's aggregate model cannot express: dynamic
// per-instance batching, priced by a batch-dimension extension of the
// profiled service-time grids (internal/sim evaluated at representative
// batch sizes per pair). Two measurements, in the spirit of the HPC
// characterization literature's "measure the throughput curve, don't
// assume it":
//
//  1. Latency-bounded fleet throughput: a fixed pool of identical
//     servers is swept over offered load for each batch cap and
//     router, and the pool's capacity — the highest load served with
//     tails inside the SLA and no drops — is read off the curve. This
//     is the fleet analogue of the paper's per-server latency-bounded
//     QPS, and it is where the batching payoff (and its
//     architecture-dependence) shows directly.
//  2. A full-day replay under spike timelines (internal/scenario) on a
//     provisioned fleet, confirming the engine's adaptive per-pair
//     batch caps collect those gains without regressing the smooth
//     day.

// BatchSizes are the dynamic-batching caps the sweep compares (1 is
// the unbatched baseline).
var BatchSizes = []int{1, 4, 16}

// BatchRouters are the routing policies compared under batching: the
// two strongest state-aware policies from the Fig. 13-online replay.
var BatchRouters = []string{fleet.PowerOfTwo, fleet.WeightedHetero}

// BatchServers are the pool server types of the capacity sweep: the
// Fig. 8 characterization trio (DDR4 CPU, NMP, GPU).
var BatchServers = []string{"T2", "T3", "T7"}

// BatchSpikes are the load regimes of the day replay: mid-morning
// spike factors injected through the scenario timeline machinery
// between scheduled re-provisions (hour 9 to 11.5 against the hour-8
// allocation). 1 is the smooth diurnal baseline; 2.5 is the
// flash-crowd factor, which saturates the stale allocation and makes
// goodput the discriminating metric.
var BatchSpikes = []float64{1, 2.5}

// batchModel is the capacity sweep's workload: the memory-dominated
// RMC1, whose 20 ms SLA makes over-batching visibly expensive.
const batchModel = "DLRM-RMC1"

const (
	// batchWaitS is the batch-formation wait window: 2 ms, a tenth of
	// RMC1's 20 ms SLA, so the latency cost of batching stays visible
	// but bounded.
	batchWaitS = 0.002
	// batchPoolServers / batchPoolSliceS size one capacity-sweep cell.
	batchPoolServers = 8
	batchPoolSliceS  = 10.0
)

// batchLoadLadder sweeps offered load as a fraction of the pool's
// profiled (unbatched) capacity.
var batchLoadLadder = []float64{0.6, 0.7, 0.8, 0.9, 1.0, 1.1, 1.2, 1.3, 1.4, 1.5}

// batchSpec mirrors the scenario sweep's budget with batching enabled
// and the autoscaler off (equal fleet across batch settings: the
// provisioner must see only offered load).
func batchSpec(router string, seed int64, maxBatch int) fleet.Spec {
	spec := FleetSpec(router, "hercules", seed)
	spec.Models = []string{batchModel}
	spec.Scaler = "none"
	spec.Options.MaxQueriesPerInterval = 25000
	spec.Options.MaxBatch = maxBatch
	spec.Options.BatchWaitS = batchWaitS
	return spec
}

// BatchFleet is the day replay's cluster: a single-type T2 fleet
// serving the capacity sweep's model, so the spike's damage (and the
// batcher's rescue) is attributable to one measured batch curve rather
// than averaged across types. Part 1 carries the cross-architecture
// comparison.
func BatchFleet() hw.Fleet {
	return hw.Fleet{Types: []hw.Server{hw.ServerType("T2")}, Counts: []int{24}}
}

// batchWorkloads sizes the day's diurnal peak to ~45% of the batch
// fleet's profiled capacity — high enough that the stale hour-8
// allocation saturates under the flash-crowd factor, low enough that
// the smooth day serves clean.
func batchWorkloads(table *profiler.Table, seed int64) []cluster.Workload {
	fl := BatchFleet()
	var capQPS float64
	if e, ok := table.Get(fl.Types[0].Type, batchModel); ok {
		capQPS = e.QPS * float64(fl.Counts[0])
	}
	cfg := workload.DiurnalConfig{
		Service:    batchModel,
		PeakQPS:    capQPS * 0.45,
		ValleyFrac: 0.4,
		PeakHour:   20,
		Days:       1,
		StepMin:    60,
		NoiseStd:   0.02,
		Seed:       seed,
	}
	return []cluster.Workload{{Model: batchModel, Trace: workload.Synthesize(cfg)}}
}

// batchSpike compiles one day-replay load regime: a factor-f spike
// from hour 9 to 11.5 with half-hour ramps — inside the stale window
// of the hour-8 scheduled allocation.
func batchSpike(factor float64) scenario.Scenario {
	if factor == 1 {
		return scenario.Scenario{Name: "baseline"}
	}
	return scenario.Scenario{
		Name: fmt.Sprintf("spike-x%.2f", factor),
		Events: []scenario.Event{
			{Kind: scenario.Spike, StartH: 9, EndH: 11.5, RampH: 0.5, Factor: factor},
		},
	}
}

// FleetDayBatched replays one full diurnal day with dynamic batching
// enabled (the BenchmarkFleetDayBatched subject): FleetDay's exact
// configuration plus the engine's adaptive per-pair batchers capped at
// maxBatch.
func FleetDayBatched(router, policy string, maxBatch int, seed int64) (fleet.DayResult, error) {
	spec := FleetSpec(router, policy, seed)
	spec.Options.MaxBatch = maxBatch
	spec.Options.BatchWaitS = batchWaitS
	return runFleetSpec(spec, seed)
}

// BatchCapacityRow is one cell of the latency-bounded-throughput
// sweep: a fixed pool of identical servers at one batch cap under one
// router.
type BatchCapacityRow struct {
	Server string
	Router string
	Batch  int
	// LBTQPS is the highest ladder load the pool served with p95
	// inside the SLA and zero drops (0 when even the lightest load
	// breached).
	LBTQPS float64
	// GainX is LBTQPS over the batch-1 pool's LBTQPS (1 for batch 1).
	GainX float64
	// P95AtCapMS is the pool tail at the capacity point.
	P95AtCapMS float64
}

// BatchDayRow is one cell of the day-replay sweep.
type BatchDayRow struct {
	Batch int
	Day   fleet.DayResult
}

// FigBatchResult holds both parts of the dynamic-batching experiment.
type FigBatchResult struct {
	Capacity []BatchCapacityRow
	Days     []BatchDayRow
}

// FigBatch runs the dynamic-batching sweep: the pool capacity curves
// (batch size × router × load ladder per server type), then the
// spike-timeline day replays at equal fleet size (the autoscaler is
// disabled so provisioning depends only on offered load, identical
// across batch settings).
func FigBatch(seed int64) (FigBatchResult, error) {
	table, err := FleetTable()
	if err != nil {
		return FigBatchResult{}, err
	}
	var res FigBatchResult

	// Part 1: latency-bounded throughput of fixed pools.
	m, err := model.ByName(batchModel, model.Prod)
	if err != nil {
		return res, err
	}
	src := fleet.SharedSimService(table)
	for _, server := range BatchServers {
		entry, ok := table.Get(server, batchModel)
		if !ok || entry.QPS <= 0 {
			return res, fmt.Errorf("experiments: no profiled capacity for %s/%s", server, batchModel)
		}
		svc := src.PairService(server, batchModel)
		conc := concurrencyFor(entry.QPS, svc)
		// One pool per batch cap, reused across routers and ladder steps
		// (ReplaySlice resets every instance before replaying).
		pools := make(map[int][]*fleet.Instance, len(BatchSizes))
		for _, b := range BatchSizes {
			pools[b] = batchPool(server, entry.QPS, conc, b, src.PairBatchEff(server, batchModel, b), svc)
		}
		for _, router := range BatchRouters {
			var base float64
			for _, b := range BatchSizes {
				row := BatchCapacityRow{Server: server, Router: router, Batch: b}
				for _, f := range batchLoadLadder {
					offered := f * entry.QPS * batchPoolServers
					queries := workload.NewGenerator(m, offered, mixSeed(seed, int64(b), hashString(server), int64(f*100))).Until(batchPoolSliceS)
					sl := fleet.ReplaySlice(router, pools[b], queries, seed)
					if sl.Dropped > 0 || len(sl.LatS) == 0 {
						continue
					}
					for i := range sl.LatS {
						sl.LatS[i] *= 1e3
					}
					if p95 := stats.PercentileSelect(sl.LatS, 95); p95 <= m.SLATargetMS && offered > row.LBTQPS {
						row.LBTQPS = offered
						row.P95AtCapMS = p95
					}
				}
				if b == 1 {
					base = row.LBTQPS
				}
				if base > 0 {
					row.GainX = row.LBTQPS / base
				}
				res.Capacity = append(res.Capacity, row)
			}
		}
	}

	// Part 2: full-day replays under the spike timelines.
	ws := batchWorkloads(table, seed)
	for _, factor := range BatchSpikes {
		sc := batchSpike(factor)
		for _, r := range BatchRouters {
			for _, b := range []int{1, BatchSizes[len(BatchSizes)-1]} {
				eng, err := fleet.NewEngine(batchSpec(r, seed, b),
					fleet.WithTable(table), fleet.WithFleet(BatchFleet()))
				if err != nil {
					return res, err
				}
				if err := eng.ApplyScenario(sc, ws); err != nil {
					return res, err
				}
				day, err := eng.RunDay(ws)
				if err != nil {
					return res, err
				}
				res.Days = append(res.Days, BatchDayRow{Batch: b, Day: day})
			}
		}
	}
	return res, nil
}

// batchPool builds one capacity-sweep pool: identical instances of the
// pair with conc calibrated channels, batching enabled at cap b
// (b > 1) with the measured efficiency curve.
func batchPool(server string, qps float64, conc, b int, eff []float64, svc func(int, float64) float64) []*fleet.Instance {
	pool := make([]*fleet.Instance, batchPoolServers)
	for i := range pool {
		in := fleet.NewInstance(i, server, batchModel, qps, conc, 32, svc)
		if b > 1 && eff != nil {
			in.EnableBatching(b, batchWaitS, eff)
		}
		pool[i] = in
	}
	return pool
}

// concurrencyFor mirrors the engine's channel calibration for the
// sweep's pools: enough channels that c / E[solo] reaches the profiled
// capacity, with E[solo] estimated over the default size distribution.
func concurrencyFor(qps float64, svc func(int, float64) float64) int {
	r := stats.NewRand(0x5eed)
	d := workload.DefaultQuerySizes()
	var sum float64
	n := 0
	for i := 0; i < 128; i++ {
		v := svc(d.Draw(r), 1)
		if v > 0 {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 1
	}
	c := int(qps*sum/float64(n)) + 1
	return stats.ClampInt(c, 1, 256)
}

// Unbatched returns the batch-1 day row matching the given row's
// router and scenario (the divergence reference).
func (r FigBatchResult) Unbatched(row BatchDayRow) (BatchDayRow, bool) {
	for _, b := range r.Days {
		if b.Batch == 1 && b.Day.Scenario == row.Day.Scenario && b.Day.Router == row.Day.Router {
			return b, true
		}
	}
	return BatchDayRow{}, false
}

// Render implements Renderer.
func (r FigBatchResult) Render() string {
	var sb strings.Builder
	header(&sb, "Batching 1: latency-bounded pool throughput, batch x router x load ladder")
	sb.WriteString("server\trouter\tbatch\tlbt_qps\tgain_x\tp95_at_cap_ms\n")
	for _, row := range r.Capacity {
		fmt.Fprintf(&sb, "%s\t%s\t%d\t%.0f\t%.2f\t%.1f\n",
			row.Server, row.Router, row.Batch, row.LBTQPS, row.GainX, row.P95AtCapMS)
	}
	sb.WriteString("(8-server pools of one (type, model) pair; capacity = max ladder load with p95 <= SLA\n")
	sb.WriteString(" and no drops. The payoff is a measured architecture property: the DDR4 pair's strong\n")
	sb.WriteString(" amortization curve nets real capacity, while the NMP/GPU pairs' calibrated channel\n")
	sb.WriteString(" models already extract their headroom and over-batching only buys latency.)\n\n")
	header(&sb, "Batching 2: day replay under spike timelines, adaptive per-pair caps")
	sb.WriteString("scenario\trouter\tbatch\tsla_viol_min\tdrop_pct\tmean_p95_ms\tmax_p99_ms\tenergy_MJ\n")
	for _, row := range r.Days {
		d := row.Day
		fmt.Fprintf(&sb, "%s\t%s\t%d\t%.1f\t%.3f\t%.1f\t%.1f\t%.1f\n",
			d.Scenario, d.Router, row.Batch, d.SLAViolationMin, d.DropFrac*100,
			d.MeanP95MS, d.MaxP99MS, d.EnergyKJ/1e3)
	}
	sb.WriteString("(equal fleet per scenario: the autoscaler is off, so provisioning sees only offered\n")
	sb.WriteString(" load; the engine derives each pair's batch cap from its measured efficiency curve\n")
	sb.WriteString(" and SLA budget, refusing pairs where batching loses)\n")
	return sb.String()
}

// hashString / mixSeed mirror the fleet engine's deterministic seed
// derivation for the sweep's independent query streams.
func hashString(s string) int64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return int64(h >> 1)
}

func mixSeed(seed int64, vals ...int64) int64 {
	h := uint64(seed) ^ 0x9E3779B97F4A7C15
	for _, v := range vals {
		h ^= uint64(v) + 0x9E3779B97F4A7C15 + (h << 6) + (h >> 2)
		h *= 0xBF58476D1CE4E5B9
		h ^= h >> 27
	}
	return int64(h >> 1)
}
