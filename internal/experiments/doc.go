// Package experiments reproduces every table and figure of the Hercules
// paper's evaluation. Each Fig*/Table* function runs the corresponding
// experiment end-to-end on the simulated substrate and returns a
// structured result with a Render method that prints the same rows or
// series the paper reports.
//
// The package is consumed by the root benchmark harness (bench_test.go),
// the cmd/hercules-figures CLI, and the runnable examples. Expensive
// shared artifacts — the Hercules and baseline efficiency tables of
// Fig. 9(b) — are built once per process and memoized.
//
// Beyond the paper's own figures, two drivers score the request-level
// serving layer the paper's aggregate-capacity evaluation cannot see:
// Fig13Online (routers × provisioning policies over a replayed diurnal
// day, internal/fleet) and FigScenarios (routers × autoscaler under the
// non-stationary scenarios of internal/scenario — flash crowd, regional
// shift, server failure — scored in SLA-violation minutes against the
// baseline replay).
//
// Every experiment is deterministic given Seed; EXPERIMENTS.md records
// the paper-vs-measured numbers for the default seed.
package experiments
