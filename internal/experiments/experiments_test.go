package experiments

import (
	"os"
	"strings"
	"testing"

	"hercules/internal/model"
	"hercules/internal/profiler"
)

// syntheticFullTable builds a deterministic efficiency table covering
// all 10 server types × 6 models with the paper's qualitative ordering:
// NMP servers dominate for pooled memory-bound models, GPU servers for
// compute-bound models, NMP is wasted idle power for lookup-only models.
func syntheticFullTable() *profiler.Table {
	t := &profiler.Table{}
	baseQPS := map[string]float64{
		"DLRM-RMC1": 900, "DLRM-RMC2": 150, "DLRM-RMC3": 420,
		"MT-WnD": 320, "DIN": 420, "DIEN": 130,
	}
	memBound := map[string]bool{"DLRM-RMC1": true, "DLRM-RMC2": true}
	type srvSpec struct {
		label    string
		nmp      int
		gpu      bool
		cpuBoost float64
		idleW    float64
	}
	specs := []srvSpec{
		{"T1", 0, false, 0.75, 120},
		{"T2", 0, false, 1.0, 150},
		{"T3", 2, false, 1.0, 175},
		{"T4", 4, false, 1.0, 230},
		{"T5", 8, false, 1.0, 340},
		{"T6", 0, true, 0.75, 420},
		{"T7", 0, true, 1.0, 450},
		{"T8", 2, true, 1.0, 480},
		{"T9", 4, true, 1.0, 530},
		{"T10", 8, true, 1.0, 640},
	}
	for _, sp := range specs {
		for m, q := range baseQPS {
			qps := q * sp.cpuBoost
			if sp.nmp > 0 && memBound[m] {
				qps *= 1 + 0.45*float64(sp.nmp)
			}
			if sp.gpu && !memBound[m] {
				qps *= 6
			}
			power := sp.idleW + qps*0.05
			t.Set(profiler.Entry{
				Model: m, Server: sp.label,
				QPS: qps, PowerW: power, QPSPerWatt: qps / power,
			})
		}
	}
	return t
}

func TestMain(m *testing.M) {
	// Cluster-level figure tests run against a synthetic efficiency
	// table; building the real one takes minutes and is exercised by the
	// benchmark harness instead.
	SetHerculesTable(syntheticFullTable())
	os.Exit(m.Run())
}

func TestTableIRender(t *testing.T) {
	r := TableI()
	if len(r.Rows) != 6 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	out := r.Render()
	for _, name := range model.ZooNames {
		if !strings.Contains(out, name) {
			t.Errorf("missing %s in:\n%s", name, out)
		}
	}
}

func TestTableIIRender(t *testing.T) {
	r := TableII()
	if len(r.Rows) != 10 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	out := r.Render()
	if !strings.Contains(out, "T10") || !strings.Contains(out, "V100") {
		t.Fatalf("table II incomplete:\n%s", out)
	}
}

func TestFig1Regions(t *testing.T) {
	r := Fig1ModelFootprint()
	regions := map[string]string{}
	for _, row := range r.Rows {
		regions[row.Model] = row.Region
	}
	if regions["DLRM-RMC1"] != "memory-dominated" || regions["DIEN"] != "compute-dominated" {
		t.Fatalf("regions wrong: %v", regions)
	}
	if !strings.Contains(r.Render(), "memory-dominated") {
		t.Fatal("render missing regions")
	}
}

func TestFig2b(t *testing.T) {
	r := Fig2bQuerySizes(Seed)
	if !(r.P50 < r.P75 && r.P75 < r.P95 && r.P95 < r.P99) {
		t.Fatalf("percentiles not ordered: %+v", r)
	}
	if r.TailHeavyRatio < 3 {
		t.Fatalf("tail ratio %.1f too light", r.TailHeavyRatio)
	}
	if r.Hist.Total() != 30000 {
		t.Fatalf("histogram total %d", r.Hist.Total())
	}
	if !strings.Contains(r.Render(), "p99") {
		t.Fatal("render missing stats")
	}
}

func TestFig2c(t *testing.T) {
	r := Fig2cPoolingFactors(Seed)
	if len(r.Rows) != 15 {
		t.Fatalf("rows = %d, want 15 tables", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !(row.P10 <= row.P50 && row.P50 <= row.P90) {
			t.Fatalf("quantiles disordered: %+v", row)
		}
		if row.P90 <= row.P10 {
			t.Fatalf("no variance in pooling factors: %+v", row)
		}
	}
	r.Render()
}

func TestFig2d(t *testing.T) {
	r := Fig2dDiurnalLoad(Seed)
	if len(r.Traces) != 8 {
		t.Fatalf("traces = %d, want 2 services × 4 DCs", len(r.Traces))
	}
	if r.Fluctuation < 0.5 {
		t.Fatalf("fluctuation %.2f, paper reports >50%%", r.Fluctuation)
	}
	if !strings.Contains(r.Render(), "service1-dc1") {
		t.Fatal("render missing services")
	}
}

func TestFig5(t *testing.T) {
	r := Fig5OpWorkerIdle()
	if len(r.Rows) != 24 {
		t.Fatalf("rows = %d, want 6 models × 4 worker counts", len(r.Rows))
	}
	// Fig. 5c: idle grows with workers for every model.
	byModel := map[string][]float64{}
	for _, row := range r.Rows {
		byModel[row.Model] = append(byModel[row.Model], row.IdleFrac)
	}
	for m, fr := range byModel {
		for i := 1; i < len(fr); i++ {
			if fr[i] < fr[i-1]-1e-9 {
				t.Errorf("%s: idle not monotone: %v", m, fr)
			}
		}
	}
	r.Render()
}

func TestFig8WithSyntheticTable(t *testing.T) {
	r := Fig8ClusterCharacterization(Seed)
	if len(r.Efficiency) != 6 {
		t.Fatalf("efficiency rows = %d", len(r.Efficiency))
	}
	if r.GreedyVsNHPeak <= 0 {
		t.Errorf("greedy must save peak power over NH: %v", r.GreedyVsNHPeak)
	}
	if !strings.Contains(r.Render(), "HEADLINE") && !strings.Contains(r.Render(), "greedy saves") {
		t.Fatal("render missing savings")
	}
}

func TestFig15WithSyntheticTable(t *testing.T) {
	r := Fig15ServerArchExploration()
	if len(r.Rows) != 60 {
		t.Fatalf("rows = %d, want 6×10", len(r.Rows))
	}
	// Paper orderings under the synthetic table: RMC1's best efficiency
	// is an NMP type; DIEN's best is a GPU type without NMP waste.
	best1 := r.BestServer("DLRM-RMC1")
	if best1 != "T3" && best1 != "T4" && best1 != "T5" {
		t.Errorf("RMC1 best server = %s, want an NMP type", best1)
	}
	bestD := r.BestServer("DIEN")
	if bestD != "T6" && bestD != "T7" {
		t.Errorf("DIEN best server = %s, want a plain GPU type", bestD)
	}
	r.Render()
}

func TestFig16WithSyntheticTable(t *testing.T) {
	r := Fig16ModelEvolution(Seed)
	if len(r.Steps) == 0 {
		t.Fatal("no evolution steps")
	}
	// Complexity grows along the evolution: final step needs more power
	// than the first.
	first, last := r.Steps[0], r.Steps[len(r.Steps)-1]
	if last.PeakPowerKW <= first.PeakPowerKW {
		t.Errorf("evolution must raise power: %.1f → %.1f kW",
			first.PeakPowerKW, last.PeakPowerKW)
	}
	if r.CapacityGrowth <= 1 || r.PowerGrowth <= 1 {
		t.Errorf("D2/D1 growth must exceed 1: cap %.2f power %.2f",
			r.CapacityGrowth, r.PowerGrowth)
	}
	r.Render()
}

func TestFig17WithSyntheticTable(t *testing.T) {
	r := Fig17ClusterSchedulers(Seed)
	h := r.Runs["hercules"]
	g := r.Runs["greedy"]
	if h.PeakPowerW > g.PeakPowerW+1e-6 {
		t.Errorf("hercules peak power %.0f exceeds greedy %.0f", h.PeakPowerW, g.PeakPowerW)
	}
	if r.GreedyPowerPeak <= 0 {
		t.Errorf("greedy must beat NH: %v", r.GreedyPowerPeak)
	}
	if h.UnsatSteps > 0 {
		t.Errorf("hercules left %d steps unsatisfied", h.UnsatSteps)
	}
	out := r.Render()
	if !strings.Contains(out, "HEADLINE") {
		t.Fatal("render missing headline")
	}
}

func TestAblationLPRoundingWithSyntheticTable(t *testing.T) {
	r := AblationLPRounding(Seed)
	if r.CeilPowerKW < r.RepairPowerKW {
		t.Errorf("naive ceiling (%.1f kW) should not beat repair (%.1f kW)",
			r.CeilPowerKW, r.RepairPowerKW)
	}
	r.Render()
}

func TestFig4HostParallelism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	t.Parallel()
	r := Fig4HostParallelism(Seed)
	if len(r.Rows) != 12 {
		t.Fatalf("rows = %d, want 2 configs × 6 SLAs", len(r.Rows))
	}
	// At the tightest SLA the 10×2 config must lead (Fig. 4a).
	var q20, q10 float64
	for _, row := range r.Rows {
		if row.SLAMS == 5 || row.SLAMS == 10 {
			if strings.HasPrefix(row.Config, "20x1") {
				q20 += row.QPS
			} else {
				q10 += row.QPS
			}
		}
	}
	if q10 <= q20 {
		t.Errorf("10x2 (%.0f) must beat 20x1 (%.0f) at tight SLAs", q10, q20)
	}
	r.Render()
}

func TestFig7FusionBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	t.Parallel()
	r := Fig7FusionBreakdown(Seed)
	if len(r.Rows) == 0 {
		t.Fatal("no rows")
	}
	// RMC3 must be data-loading dominated (paper: 65–83% of latency is
	// data loading). At small no-fusion batches our kernel-launch model
	// shifts some cost into the compute stage, so the assertion applies
	// where fused batches are formed (see EXPERIMENTS.md).
	for _, row := range r.Rows {
		if row.Model == "DLRM-RMC3" && row.FusionLimit >= 2000 &&
			row.LoadFrac < row.ComputeFrac {
			t.Errorf("RMC3 load %.2f < compute %.2f at fusion %d",
				row.LoadFrac, row.ComputeFrac, row.FusionLimit)
		}
	}
	// Queue fraction must grow with the fusion limit (Fig. 7's tradeoff)
	// for at least one model.
	r.Render()
}

func TestFig12SDPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	t.Parallel()
	r := Fig12SDPipeline(Seed)
	if len(r.CPURows) < 5 || len(r.AccelRows) < 4 {
		t.Fatalf("rows: cpu=%d accel=%d", len(r.CPURows), len(r.AccelRows))
	}
	// Fig. 12a: throughput rises then falls across the thread split —
	// the peak must be interior (not at either end).
	peakIdx, peak := 0, 0.0
	for i, row := range r.CPURows {
		if row.QPS > peak {
			peak, peakIdx = row.QPS, i
		}
	}
	if peakIdx == 0 || peakIdx == len(r.CPURows)-1 {
		t.Logf("S-D equilibrium at boundary (%d); acceptable but worth watching", peakIdx)
	}
	r.Render()
}

func TestAblationNoContention(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	t.Parallel()
	r := AblationNoContention(Seed)
	gainWith := r.With10x2 / r.With20x1
	gainWithout := r.Without10x2 / r.Without20x1
	if gainWith <= gainWithout {
		t.Errorf("contention must be what makes 10x2 win: with=%.2fx without=%.2fx",
			gainWith, gainWithout)
	}
	r.Render()
}

func TestAblationNoHotPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	t.Parallel()
	r := AblationNoHotPartition(Seed)
	if r.HotMass <= 0.3 {
		t.Errorf("hot mass %.2f too small for Zipf-skewed tables", r.HotMass)
	}
	if r.PCIeWithout <= 0 || r.PCIeWith <= 0 {
		t.Fatal("payloads must be positive")
	}
	r.Render()
}

func TestFig6PolicyOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	t.Parallel()
	r := Fig6AcceleratorPolicies(Seed)
	// For each (model, SLA): DeepRecSys ≤ Baymax ≤ CoLoc+Fusion — the
	// paper's Fig. 6 ordering (Baymax adds co-location, the combination
	// adds fusion on top).
	type key struct {
		model string
		sla   float64
	}
	qps := map[key]map[string]float64{}
	for _, row := range r.Rows {
		k := key{row.Model, row.SLAMS}
		if qps[k] == nil {
			qps[k] = map[string]float64{}
		}
		qps[k][row.Policy] = row.QPS
	}
	for k, m := range qps {
		if m["Baymax"] < m["DeepRecSys"]*0.99 {
			t.Errorf("%v: Baymax (%.0f) below DeepRecSys (%.0f)", k, m["Baymax"], m["DeepRecSys"])
		}
		if m["CoLoc+Fusion"] < m["Baymax"]*0.99 {
			t.Errorf("%v: fusion (%.0f) below Baymax (%.0f)", k, m["CoLoc+Fusion"], m["Baymax"])
		}
	}
	// And fusion must provide a real multiple somewhere (paper: up to
	// 2.95–7.87×).
	var maxGain float64
	for _, m := range qps {
		if m["Baymax"] > 0 && m["CoLoc+Fusion"]/m["Baymax"] > maxGain {
			maxGain = m["CoLoc+Fusion"] / m["Baymax"]
		}
	}
	if maxGain < 1.5 {
		t.Errorf("max fusion gain %.2fx, want a clear multiple", maxGain)
	}
}

func TestFig11SurfacesAndPath(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-heavy")
	}
	t.Parallel()
	r := Fig11ParallelismSpace(Seed)
	if len(r.CPURows) == 0 || len(r.GPURows) == 0 {
		t.Fatal("empty surfaces")
	}
	// The rendered surface is a reduced display grid; the fair reference
	// for search cost is the full Psp(M+D+O) space (~500 points on T2,
	// see the search-vs-exhaustive ablation).
	if r.PathEval <= 0 || r.PathEval >= 200 {
		t.Errorf("gradient path used %d evals; expected far below the ~500-point space", r.PathEval)
	}
	// Throughput at fixed o=1 must rise with thread count initially
	// (co-location wins before contention) — the left slope of Fig. 11a.
	// Compare each thread count at its best batch size.
	best := map[int]float64{}
	for _, row := range r.CPURows {
		if row.OpWorkers != 1 {
			continue
		}
		if row.QPS > best[row.Threads] {
			best[row.Threads] = row.QPS
		}
	}
	if best[8] <= best[1] {
		t.Errorf("co-location must add throughput: 1 thread %.0f vs 8 threads %.0f",
			best[1], best[8])
	}
	r.Render()
}
