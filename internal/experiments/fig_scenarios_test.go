package experiments

import (
	"strings"
	"testing"

	"hercules/internal/fleet"
)

func TestFigScenarios(t *testing.T) {
	if testing.Short() {
		t.Skip("replays many full days of traffic")
	}
	t.Parallel()
	r, err := FigScenarios(Seed)
	if err != nil {
		t.Fatal(err)
	}
	want := len(ScenarioNames) * (len(ScenarioRouters)*2 + len(ScenarioPolicyCells))
	if len(r.Rows) != want {
		t.Fatalf("rows = %d, want %d", len(r.Rows), want)
	}
	// The registry-shipped policies must appear as sweep rows, labeled
	// by the names the engine resolved them under.
	sawProp, sawDeadline := false, false
	for _, row := range r.Rows {
		if row.Day.Scaler == "prop" {
			sawProp = true
		}
		if row.Day.Admission == "deadline" {
			sawDeadline = true
		}
	}
	if !sawProp || !sawDeadline {
		t.Errorf("sweep must include the prop-scaler and deadline-admission rows (prop=%v deadline=%v)",
			sawProp, sawDeadline)
	}
	type key struct {
		scenario, router string
		autoscaled       bool
	}
	byKey := map[key]fleet.DayResult{}
	for _, row := range r.Rows {
		d := row.Day
		if d.Admission == "" && (d.Scaler == "" || d.Scaler == "breach") {
			// Only default-policy rows index the router × autoscaler
			// grid; the prop/deadline cells would collide on the key.
			byKey[key{d.Scenario, d.Router, row.Autoscaled}] = d
		}
		if d.TotalQueries <= 0 {
			t.Fatalf("%s/%s replayed nothing", d.Scenario, d.Router)
		}
		if len(d.Steps) < 24 {
			t.Fatalf("%s/%s replayed %d intervals, want a full day", d.Scenario, d.Router, len(d.Steps))
		}
	}
	// Every disruption scenario must hurt some router more than the
	// matched baseline — the whole point of the non-stationary replay.
	for _, name := range []string{"flashcrowd", "regionshift", "failure"} {
		diverged := false
		for _, rk := range ScenarioRouters {
			for _, auto := range []bool{false, true} {
				base := byKey[key{"baseline", rk, auto}]
				day := byKey[key{name, rk, auto}]
				if day.SLAViolationMin > base.SLAViolationMin ||
					day.TotalDrops > base.TotalDrops ||
					day.MaxP99MS > base.MaxP99MS*1.2 {
					diverged = true
				}
			}
		}
		if !diverged {
			t.Errorf("%s never diverged from the baseline replay", name)
		}
	}
	// The failure scenario must record dead servers mid-day.
	failDay := byKey[key{"failure", "p2c", true}]
	var sawDead bool
	for _, s := range failDay.Steps {
		if s.DeadServers > 0 {
			sawDead = true
			break
		}
	}
	if !sawDead {
		t.Error("failure scenario recorded no dead servers")
	}
	// Under the flash crowd, the autoscaler must not make any router
	// worse on violation minutes (it exists for exactly this event).
	for _, rk := range ScenarioRouters {
		off := byKey[key{"flashcrowd", rk, false}]
		on := byKey[key{"flashcrowd", rk, true}]
		if on.SLAViolationMin > off.SLAViolationMin {
			t.Errorf("flashcrowd/%s: autoscaler worsened violations %.1f -> %.1f",
				rk, off.SLAViolationMin, on.SLAViolationMin)
		}
	}
	out := r.Render()
	for _, frag := range []string{"Scenarios:", "flashcrowd", "worst added violation"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("render missing %q:\n%s", frag, out)
		}
	}
}

func TestScenarioDayRejectsUnknown(t *testing.T) {
	if _, err := ScenarioDay("no-such", fleet.RoundRobin, true, Seed); err == nil {
		t.Error("unknown scenario accepted")
	}
}
