package experiments

import (
	"fmt"
	"strings"

	"hercules/internal/cluster"
	"hercules/internal/hw"
	"hercules/internal/model"
	"hercules/internal/profiler"
	"hercules/internal/workload"
)

// Fig8Result reproduces Fig. 8: the heterogeneity-aware cluster
// characterization — per-server efficiency of RMC1/RMC2 (a) and the
// provisioned power of NH, greedy and priority-aware schedulers over a
// diurnal day (b,c).
type Fig8Result struct {
	Efficiency []Fig8EffRow
	Runs       map[string]cluster.RunResult // policy → run
	// GreedyVsNH / PriorityVsGreedy are (peak, avg) power savings.
	GreedyVsNHPeak, GreedyVsNHAvg             float64
	PriorityVsGreedyPeak, PriorityVsGreedyAvg float64
}

// Fig8EffRow is one bar of Fig. 8(a).
type Fig8EffRow struct {
	Model      string
	Server     string
	QPS        float64
	QPSPerWatt float64
}

// Fig8ClusterCharacterization runs the characterization: RMC1+RMC2 with
// 50K-QPS diurnal peaks on a {T2×70, T3×15, T7×5} cluster.
func Fig8ClusterCharacterization(seed int64) Fig8Result {
	table := HerculesTable()
	res := Fig8Result{Runs: make(map[string]cluster.RunResult)}
	for _, srv := range []string{"T2", "T3", "T7"} {
		for _, m := range []string{"DLRM-RMC1", "DLRM-RMC2"} {
			e := table.MustGet(srv, m)
			res.Efficiency = append(res.Efficiency, Fig8EffRow{
				Model: m, Server: srv, QPS: e.QPS, QPSPerWatt: e.QPSPerWatt,
			})
		}
	}
	fleet := hw.Fleet{
		Types:  []hw.Server{hw.ServerType("T2"), hw.ServerType("T3"), hw.ServerType("T7")},
		Counts: []int{70, 15, 5},
	}
	// Peak loads sized to the fleet: scale the paper's 50K peaks to what
	// 70×T2 can carry for these two workloads.
	peak1 := table.MustGet("T2", "DLRM-RMC1").QPS * 25
	peak2 := table.MustGet("T2", "DLRM-RMC2").QPS * 25
	ws := []cluster.Workload{
		{Model: "DLRM-RMC1", Trace: workload.Synthesize(workload.DefaultDiurnal("rmc1", peak1, 1, seed))},
		{Model: "DLRM-RMC2", Trace: workload.Synthesize(workload.DefaultDiurnal("rmc2", peak2, 1, seed+1))},
	}
	for _, pol := range []cluster.Policy{cluster.NH, cluster.Greedy, cluster.Priority} {
		res.Runs[pol.String()] = cluster.NewProvisioner(fleet, table, pol, seed).Run(ws)
	}
	res.GreedyVsNHPeak, res.GreedyVsNHAvg =
		cluster.Saving(res.Runs["NH"], res.Runs["greedy"])
	res.PriorityVsGreedyPeak, res.PriorityVsGreedyAvg =
		cluster.Saving(res.Runs["greedy"], res.Runs["priority"])
	return res
}

// Render implements Renderer.
func (r Fig8Result) Render() string {
	var sb strings.Builder
	header(&sb, "Fig. 8: cluster characterization (RMC1+RMC2 on T2/T3/T7)")
	sb.WriteString("(a) efficiency per server type\nmodel\tserver\tQPS\tQPS/W\n")
	for _, row := range r.Efficiency {
		fmt.Fprintf(&sb, "%s\t%s\t%.0f\t%.2f\n", row.Model, row.Server, row.QPS, row.QPSPerWatt)
	}
	sb.WriteString("(c) provisioned power by scheduler\npolicy\tpeak_kW\tavg_kW\n")
	for _, pol := range []string{"NH", "greedy", "priority"} {
		run := r.Runs[pol]
		fmt.Fprintf(&sb, "%s\t%.1f\t%.1f\n", pol, run.PeakPowerW/1e3, run.AvgPowerW/1e3)
	}
	fmt.Fprintf(&sb, "greedy saves %.1f%% peak / %.1f%% avg power over NH (paper: 41.6%% / 21.5%%)\n",
		r.GreedyVsNHPeak*100, r.GreedyVsNHAvg*100)
	fmt.Fprintf(&sb, "priority saves %.1f%% peak / %.1f%% avg power over greedy (paper: 11.4%% / 4.2%%)\n",
		r.PriorityVsGreedyPeak*100, r.PriorityVsGreedyAvg*100)
	return sb.String()
}

// Fig15Result reproduces Fig. 15: normalized latency-bounded throughput
// and energy efficiency for six models × ten server types.
type Fig15Result struct {
	Rows []Fig15Row
}

// Fig15Row is one (model, server) bar pair, normalized to T1.
type Fig15Row struct {
	Model          string
	Server         string
	QPS            float64
	QPSPerWatt     float64
	NormQPS        float64
	NormEfficiency float64
	Best           bool // highest NormEfficiency for the model
}

// Fig15ServerArchExploration reads the shared Hercules table.
func Fig15ServerArchExploration() Fig15Result {
	table := HerculesTable()
	var res Fig15Result
	for _, m := range model.ZooNames {
		base := table.MustGet("T1", m)
		bestEff, bestIdx := 0.0, -1
		for i := 1; i <= 10; i++ {
			srv := fmt.Sprintf("T%d", i)
			e := table.MustGet(srv, m)
			row := Fig15Row{Model: m, Server: srv, QPS: e.QPS, QPSPerWatt: e.QPSPerWatt}
			if base.QPS > 0 {
				row.NormQPS = e.QPS / base.QPS
			}
			if base.QPSPerWatt > 0 {
				row.NormEfficiency = e.QPSPerWatt / base.QPSPerWatt
			}
			if row.NormEfficiency > bestEff {
				bestEff = row.NormEfficiency
				bestIdx = len(res.Rows)
			}
			res.Rows = append(res.Rows, row)
		}
		if bestIdx >= 0 {
			res.Rows[bestIdx].Best = true
		}
	}
	return res
}

// BestServer returns the most energy-efficient server type for a model.
func (r Fig15Result) BestServer(modelName string) string {
	for _, row := range r.Rows {
		if row.Model == modelName && row.Best {
			return row.Server
		}
	}
	return ""
}

// Render implements Renderer.
func (r Fig15Result) Render() string {
	var sb strings.Builder
	header(&sb, "Fig. 15: normalized QPS and QPS/W across T1-T10 (vs T1)")
	sb.WriteString("model\tserver\tQPS\tnorm_QPS\tnorm_QPS/W\tbest\n")
	for _, row := range r.Rows {
		mark := ""
		if row.Best {
			mark = "*"
		}
		fmt.Fprintf(&sb, "%s\t%s\t%.0f\t%.2f\t%.2f\t%s\n",
			row.Model, row.Server, row.QPS, row.NormQPS, row.NormEfficiency, mark)
	}
	return sb.String()
}

// evolutionWorkloads builds the per-model diurnal loads for evolution
// snapshot `step` with the given total peak QPS in "RMC1-equivalent"
// demand units.
func evolutionWorkloads(step int, totalPeak float64, seed int64) []cluster.Workload {
	mix := workload.DefaultEvolution()
	fr := mix.Fractions(step)
	var ws []cluster.Workload
	for _, name := range model.ZooNames {
		f := fr[name]
		if f <= 0 {
			continue
		}
		tr := workload.Synthesize(workload.DefaultDiurnal(name, totalPeak*f, 1, seed+int64(len(ws))))
		ws = append(ws, cluster.Workload{Model: name, Trace: tr})
	}
	return ws
}

// Fig16Result reproduces Fig. 16: model evolution on the CPU-only
// cluster — required capacity and provisioned power per snapshot.
type Fig16Result struct {
	Steps []Fig16Step
	// D2OverD1 ratios (peak capacity, peak power).
	CapacityGrowth, PowerGrowth float64
}

// Fig16Step is one evolution snapshot.
type Fig16Step struct {
	Step        int
	NewShare    float64 // fraction of load on DIN/DIEN/MT-WnD
	PeakServers int
	AvgServers  float64
	PeakPowerKW float64
	AvgPowerKW  float64
}

// Fig16ModelEvolution provisions each evolution snapshot on an
// unconstrained CPU-only fleet (T1/T2), measuring the *required*
// capacity the paper projects.
func Fig16ModelEvolution(seed int64) Fig16Result {
	table := HerculesTable()
	// Unconstrained CPU-only fleet: the experiment projects demand.
	fleet := hw.Fleet{
		Types:  []hw.Server{hw.ServerType("T1"), hw.ServerType("T2")},
		Counts: []int{1 << 20, 1 << 20},
	}
	totalPeak := table.MustGet("T2", "DLRM-RMC1").QPS * 60
	mix := workload.DefaultEvolution()
	var res Fig16Result
	for step := 0; step <= mix.Cycle; step++ {
		ws := evolutionWorkloads(step, totalPeak, seed)
		run := cluster.NewProvisioner(fleet, table, cluster.Hercules, seed).Run(ws)
		fr := mix.Fractions(step)
		newShare := 0.0
		for _, nm := range mix.NewModels {
			newShare += fr[nm]
		}
		res.Steps = append(res.Steps, Fig16Step{
			Step:        step,
			NewShare:    newShare,
			PeakServers: run.PeakServers,
			AvgServers:  run.AvgServers,
			PeakPowerKW: run.PeakPowerW / 1e3,
			AvgPowerKW:  run.AvgPowerW / 1e3,
		})
	}
	// Day-D1 vs Day-D2: adjacent snapshots 20% apart in new-model share.
	d1, d2 := res.Steps[1], res.Steps[2]
	if d1.PeakServers > 0 {
		res.CapacityGrowth = float64(d2.PeakServers) / float64(d1.PeakServers)
	}
	if d1.PeakPowerKW > 0 {
		res.PowerGrowth = d2.PeakPowerKW / d1.PeakPowerKW
	}
	return res
}

// Render implements Renderer.
func (r Fig16Result) Render() string {
	var sb strings.Builder
	header(&sb, "Fig. 16: model evolution on the CPU-only cluster")
	sb.WriteString("step\tnew_share\tpeak_servers\tavg_servers\tpeak_kW\tavg_kW\n")
	for _, s := range r.Steps {
		fmt.Fprintf(&sb, "%d\t%.0f%%\t%d\t%.0f\t%.1f\t%.1f\n",
			s.Step, s.NewShare*100, s.PeakServers, s.AvgServers, s.PeakPowerKW, s.AvgPowerKW)
	}
	fmt.Fprintf(&sb, "D2/D1 peak growth: capacity %.2fx, power %.2fx (paper: 2.27x, 1.77x)\n",
		r.CapacityGrowth, r.PowerGrowth)
	last := r.Steps[len(r.Steps)-1]
	first := r.Steps[0]
	fmt.Fprintf(&sb, "full-evolution growth: capacity %.2fx, power %.2fx (paper projects 5.4x, 3.54x)\n",
		float64(last.PeakServers)/float64(first.PeakServers), last.PeakPowerKW/first.PeakPowerKW)
	return sb.String()
}

// Fig17Result reproduces Fig. 17 and the §VI-C headline: NH vs greedy vs
// Hercules provisioning of the Day-D2 accelerated cluster.
type Fig17Result struct {
	Runs map[string]cluster.RunResult
	// Hercules-vs-greedy savings (the headline numbers).
	CapSavePeak, CapSaveAvg     float64
	PowerSavePeak, PowerSaveAvg float64
	// Greedy-vs-NH savings (Fig. 17's secondary comparison).
	GreedyCapPeak, GreedyCapAvg     float64
	GreedyPowerPeak, GreedyPowerAvg float64
}

// Fig17ClusterSchedulers provisions the Day-D2 workload mix on the
// accelerated fleet with all three schedulers.
func Fig17ClusterSchedulers(seed int64) Fig17Result {
	table := HerculesTable()
	fleet := hw.AcceleratedFleet()
	totalPeak := sizeFleetLoad(table, fleet)
	ws := evolutionWorkloads(2, totalPeak, seed) // Day-D2: 40% new models
	res := Fig17Result{Runs: make(map[string]cluster.RunResult)}
	for _, pol := range []cluster.Policy{cluster.NH, cluster.Greedy, cluster.Hercules} {
		res.Runs[pol.String()] = cluster.NewProvisioner(fleet, table, pol, seed).Run(ws)
	}
	res.CapSavePeak, res.CapSaveAvg =
		cluster.CapacitySaving(res.Runs["greedy"], res.Runs["hercules"])
	res.PowerSavePeak, res.PowerSaveAvg =
		cluster.Saving(res.Runs["greedy"], res.Runs["hercules"])
	res.GreedyCapPeak, res.GreedyCapAvg =
		cluster.CapacitySaving(res.Runs["NH"], res.Runs["greedy"])
	res.GreedyPowerPeak, res.GreedyPowerAvg =
		cluster.Saving(res.Runs["NH"], res.Runs["greedy"])
	return res
}

// sizeFleetLoad picks a Day-D2 total peak demand the accelerated fleet
// can serve with headroom (~40% of an optimistic capacity bound), so
// scheduler quality — not raw fleet exhaustion — drives the comparison.
func sizeFleetLoad(table *profiler.Table, fleet hw.Fleet) float64 {
	mix := workload.DefaultEvolution()
	fr := mix.Fractions(2)
	// Fleet capacity if every server served the mix-weighted best model:
	// approximate with per-model best QPS weighted by mix share.
	var cap0 float64
	for i, srv := range fleet.Types {
		best := 0.0
		for name, f := range fr {
			if f <= 0 {
				continue
			}
			if e, ok := table.Get(srv.Type, name); ok {
				if e.QPS*f > best {
					best = e.QPS * f
				}
			}
		}
		cap0 += best * float64(fleet.Counts[i])
	}
	return cap0 * 0.4
}

// Render implements Renderer.
func (r Fig17Result) Render() string {
	var sb strings.Builder
	header(&sb, "Fig. 17: Day-D2 accelerated-cluster provisioning")
	sb.WriteString("policy\tpeak_servers\tavg_servers\tpeak_kW\tavg_kW\tunsat\tchurn\n")
	for _, pol := range []string{"NH", "greedy", "hercules"} {
		run := r.Runs[pol]
		fmt.Fprintf(&sb, "%s\t%d\t%.0f\t%.1f\t%.1f\t%d\t%d\n",
			pol, run.PeakServers, run.AvgServers, run.PeakPowerW/1e3,
			run.AvgPowerW/1e3, run.UnsatSteps, run.Activations+run.Releases)
	}
	fmt.Fprintf(&sb, "greedy vs NH: capacity %.1f%%/%.1f%%, power %.1f%%/%.1f%% (paper: 75.8/67.4, 50.8/42.7)\n",
		r.GreedyCapPeak*100, r.GreedyCapAvg*100, r.GreedyPowerPeak*100, r.GreedyPowerAvg*100)
	fmt.Fprintf(&sb, "HEADLINE hercules vs greedy: capacity %.1f%% peak / %.1f%% avg, power %.1f%% peak / %.1f%% avg\n",
		r.CapSavePeak*100, r.CapSaveAvg*100, r.PowerSavePeak*100, r.PowerSaveAvg*100)
	sb.WriteString("(paper: capacity 47.7% peak / 22.8% avg, power 23.7% peak / 9.1% avg)\n")
	return sb.String()
}
