// Package cluster implements Hercules' online serving stage (§IV-C,
// Fig. 9c, Fig. 13): the cluster manager that, at every re-provisioning
// interval, maps diurnal per-workload loads onto a heterogeneous fleet.
//
// Four scheduling policies are provided:
//
//   - NH — heterogeneity-oblivious: random server assignment [8,9 baseline];
//   - Greedy — heterogeneity-aware greedy: each workload takes its
//     best-ranked (QPS/W) available servers, competing workloads
//     arbitrated randomly [8,9];
//   - Priority — the characterization §III-C improvement: contended
//     server types go to the workload with the larger efficiency gain;
//   - Hercules — the constrained-optimization provisioner of
//     Equations (1)–(3), solved by LP relaxation (internal/lp) with
//     greedy integral repair.
//
// All policies consume the offline efficiency table (internal/profiler)
// exactly as Fig. 9 prescribes.
//
// The surface: a Provisioner drives one Policy, either one interval at
// a time (Step, which the fleet engine calls between replay intervals)
// or over whole aligned traces (Run, which the Fig. 8/17 experiments
// score on provisioned power and capacity). Allocation maps server
// type → model → activated count; Saving and CapacitySaving compare
// runs the way the paper's headline numbers do. Provisioner.Unavailable
// subtracts known-down servers (scenario failures reported by the
// fleet engine) from every policy's availability, so re-provisioning
// under degraded capacity is first-class.
package cluster
