package cluster

import (
	"testing"

	"hercules/internal/hw"
	"hercules/internal/profiler"
	"hercules/internal/workload"
)

// fig8Table builds a synthetic efficiency table shaped like the paper's
// Fig. 8(a): two workloads (RMC1, RMC2) on CPU (T2), CPU+NMP (T3) and
// CPU+GPU (T7). CPU+NMP is the most energy-efficient for both, but RMC2
// gains more from it (2.04× vs 1.75×) — the contention the priority and
// LP schedulers must arbitrate.
func fig8Table() *profiler.Table {
	t := &profiler.Table{}
	set := func(srv, m string, qps, w float64) {
		t.Set(profiler.Entry{Model: m, Server: srv, QPS: qps, PowerW: w, QPSPerWatt: qps / w})
	}
	// RMC1: base efficiency 4 QPS/W on CPU; ×1.75 on NMP; ×1.59 on GPU.
	set("T2", "DLRM-RMC1", 640, 160)
	set("T3", "DLRM-RMC1", 1180, 168)
	set("T7", "DLRM-RMC1", 2900, 455)
	// RMC2: base 2.4 QPS/W; ×2.04 on NMP; ×1.98 on GPU.
	set("T2", "DLRM-RMC2", 390, 162)
	set("T3", "DLRM-RMC2", 830, 170)
	set("T7", "DLRM-RMC2", 2150, 452)
	return t
}

func fig8Fleet() hw.Fleet {
	return hw.Fleet{
		Types:  []hw.Server{hw.ServerType("T2"), hw.ServerType("T3"), hw.ServerType("T7")},
		Counts: []int{70, 15, 5},
	}
}

func loads(rmc1, rmc2 float64) map[string]float64 {
	return map[string]float64{"DLRM-RMC1": rmc1, "DLRM-RMC2": rmc2}
}

func TestAllPoliciesSatisfyFeasibleLoads(t *testing.T) {
	table := fig8Table()
	fleet := fig8Fleet()
	for _, kind := range []Policy{NH, Greedy, Priority, Hercules} {
		p := NewProvisioner(fleet, table, kind, 1)
		sr := p.Step(loads(15000, 10000))
		if !sr.Satisfied {
			t.Errorf("%v: feasible load unsatisfied (served %v of %v)",
				kind, sr.ServedQPS, sr.TargetQPS)
		}
		if sr.ActiveServers <= 0 || sr.ProvisionedPowerW <= 0 {
			t.Errorf("%v: empty allocation", kind)
		}
	}
}

func TestAllocationRespectsAvailability(t *testing.T) {
	table := fig8Table()
	fleet := fig8Fleet()
	for _, kind := range []Policy{NH, Greedy, Priority, Hercules} {
		p := NewProvisioner(fleet, table, kind, 2)
		sr := p.Step(loads(40000, 30000)) // near fleet limits
		for i, srv := range fleet.Types {
			if got := sr.Alloc.CountFor(srv.Type); got > fleet.Counts[i] {
				t.Errorf("%v: allocated %d of %s, only %d exist", kind, got, srv.Type, fleet.Counts[i])
			}
		}
	}
}

func TestGreedyBeatsNH(t *testing.T) {
	// Fig. 8(c): the heterogeneity-aware greedy scheduler saves
	// provisioned power over NH.
	table := fig8Table()
	fleet := fig8Fleet()
	l := loads(20000, 15000)
	var nhW, grW float64
	for seed := int64(0); seed < 5; seed++ {
		nhW += NewProvisioner(fleet, table, NH, seed).Step(l).ProvisionedPowerW
		grW += NewProvisioner(fleet, table, Greedy, seed).Step(l).ProvisionedPowerW
	}
	if grW >= nhW {
		t.Fatalf("greedy (%.0f W) must save power over NH (%.0f W)", grW/5, nhW/5)
	}
}

func TestHerculesNoWorseThanGreedy(t *testing.T) {
	// §VI-C: the LP provisioner dominates the greedy policy.
	table := fig8Table()
	fleet := fig8Fleet()
	for _, l := range []map[string]float64{
		loads(20000, 15000), loads(35000, 25000), loads(5000, 30000),
	} {
		greedyW := NewProvisioner(fleet, table, Greedy, 3).Step(l).ProvisionedPowerW
		hercW := NewProvisioner(fleet, table, Hercules, 3).Step(l).ProvisionedPowerW
		if hercW > greedyW+1e-6 {
			t.Errorf("hercules (%.0f W) worse than greedy (%.0f W) at %v", hercW, greedyW, l)
		}
	}
}

func TestPriorityArbitratesContention(t *testing.T) {
	// Fig. 8: RMC2 gains more from NMP; under contention the priority
	// scheduler should give T3 to RMC2 first and save power vs expected
	// random greedy arbitration.
	table := fig8Table()
	fleet := fig8Fleet()
	l := loads(20000, 20000) // both want the 15 T3 servers
	pr := NewProvisioner(fleet, table, Priority, 4).Step(l)
	rmc2OnT3 := pr.Alloc["T3"]["DLRM-RMC2"]
	rmc1OnT3 := pr.Alloc["T3"]["DLRM-RMC1"]
	if rmc2OnT3 <= rmc1OnT3 {
		t.Errorf("priority must favor RMC2 on T3: rmc2=%d rmc1=%d", rmc2OnT3, rmc1OnT3)
	}
	var grW float64
	const trials = 7
	for seed := int64(0); seed < trials; seed++ {
		grW += NewProvisioner(fleet, table, Greedy, seed).Step(l).ProvisionedPowerW
	}
	if pr.ProvisionedPowerW > grW/trials*1.01 {
		t.Errorf("priority (%.0f W) should not exceed mean greedy (%.0f W)",
			pr.ProvisionedPowerW, grW/trials)
	}
}

func TestInfeasibleLoadBestEffort(t *testing.T) {
	table := fig8Table()
	fleet := fig8Fleet()
	for _, kind := range []Policy{NH, Greedy, Priority, Hercules} {
		p := NewProvisioner(fleet, table, kind, 5)
		sr := p.Step(loads(500000, 500000)) // far beyond fleet capacity
		if sr.Satisfied {
			t.Errorf("%v: impossible load reported satisfied", kind)
		}
		// Best effort must activate essentially the whole fleet.
		if sr.ActiveServers < fleet.Total()*9/10 {
			t.Errorf("%v: only %d of %d servers activated under overload",
				kind, sr.ActiveServers, fleet.Total())
		}
	}
}

func TestZeroLoad(t *testing.T) {
	table := fig8Table()
	p := NewProvisioner(fig8Fleet(), table, Hercules, 6)
	sr := p.Step(loads(0, 0))
	if sr.ActiveServers != 0 || sr.ProvisionedPowerW != 0 {
		t.Fatalf("zero load must activate nothing: %+v", sr)
	}
	if !sr.Satisfied {
		t.Fatal("zero load is trivially satisfied")
	}
}

func TestRunOverDiurnalTrace(t *testing.T) {
	table := fig8Table()
	fleet := fig8Fleet()
	ws := []Workload{
		{Model: "DLRM-RMC1", Trace: workload.Synthesize(workload.DefaultDiurnal("rmc1", 20000, 1, 7))},
		{Model: "DLRM-RMC2", Trace: workload.Synthesize(workload.DefaultDiurnal("rmc2", 15000, 1, 8))},
	}
	res := NewProvisioner(fleet, table, Hercules, 9).Run(ws)
	if len(res.Steps) != 96 {
		t.Fatalf("steps = %d, want 96", len(res.Steps))
	}
	if res.PeakPowerW <= res.AvgPowerW {
		t.Fatal("peak power must exceed average under diurnal load")
	}
	if res.PeakServers <= int(res.AvgServers) {
		t.Fatal("peak servers must exceed average")
	}
	if res.UnsatSteps != 0 {
		t.Fatalf("%d unsatisfied steps on a feasible day", res.UnsatSteps)
	}
	if res.TotalEnergyKJ <= 0 {
		t.Fatal("energy must integrate")
	}
	// Dynamic provisioning must track the valley: off-peak power well
	// below peak (the whole point of dynamic activation).
	if res.AvgPowerW > 0.9*res.PeakPowerW {
		t.Errorf("avg %.0f W too close to peak %.0f W — not tracking the diurnal valley",
			res.AvgPowerW, res.PeakPowerW)
	}
}

func TestRunEmptyWorkloads(t *testing.T) {
	res := NewProvisioner(fig8Fleet(), fig8Table(), Greedy, 10).Run(nil)
	if len(res.Steps) != 0 {
		t.Fatal("empty workload set must produce no steps")
	}
}

func TestSavingHelpers(t *testing.T) {
	a := RunResult{PeakPowerW: 100, AvgPowerW: 50, PeakServers: 40, AvgServers: 20}
	b := RunResult{PeakPowerW: 60, AvgPowerW: 45, PeakServers: 30, AvgServers: 18}
	pk, avg := Saving(a, b)
	if pk != 0.4 || avg != 0.1 {
		t.Fatalf("power saving = %v, %v", pk, avg)
	}
	pk, avg = CapacitySaving(a, b)
	if pk != 0.25 || avg != 0.1 {
		t.Fatalf("capacity saving = %v, %v", pk, avg)
	}
	if pk, avg = Saving(RunResult{}, b); pk != 0 || avg != 0 {
		t.Fatal("zero baseline must yield zero saving")
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range []Policy{NH, Greedy, Priority, Hercules} {
		if p.String() == "" {
			t.Error("policy must render")
		}
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy must render")
	}
}

func TestHerculesPrefersEfficientServersAtValley(t *testing.T) {
	// At low load the LP should pick the most power-efficient servers
	// only, not scatter across types.
	table := fig8Table()
	p := NewProvisioner(fig8Fleet(), table, Hercules, 11)
	sr := p.Step(loads(2000, 1500))
	// T3 (NMP) is the cheapest power-per-QPS for both workloads; with 15
	// available it should dominate the small allocation.
	t3 := sr.Alloc.CountFor("T3")
	if t3 < sr.ActiveServers/2 {
		t.Errorf("valley allocation should concentrate on T3: %+v", sr.Alloc)
	}
}

func TestStepDeterministicForLPAndPriority(t *testing.T) {
	table := fig8Table()
	fleet := fig8Fleet()
	l := loads(18000, 9000)
	a := NewProvisioner(fleet, table, Hercules, 1).Step(l)
	b := NewProvisioner(fleet, table, Hercules, 2).Step(l) // different seed
	if a.ProvisionedPowerW != b.ProvisionedPowerW {
		t.Fatal("LP provisioning must not depend on the seed")
	}
	c := NewProvisioner(fleet, table, Priority, 1).Step(l)
	d := NewProvisioner(fleet, table, Priority, 9).Step(l)
	if c.ProvisionedPowerW != d.ProvisionedPowerW {
		t.Fatal("priority provisioning must not depend on the seed")
	}
}

func TestAutoROverridesDefault(t *testing.T) {
	table := fig8Table()
	fleet := fig8Fleet()
	ws := []Workload{
		{Model: "DLRM-RMC1", Trace: workload.Synthesize(workload.DefaultDiurnal("rmc1", 20000, 1, 30))},
		{Model: "DLRM-RMC2", Trace: workload.Synthesize(workload.DefaultDiurnal("rmc2", 15000, 1, 31))},
	}
	p := NewProvisioner(fleet, table, Hercules, 32)
	p.AutoR = true
	p.OverProvisionR = 99 // must be replaced by the estimate
	res := p.Run(ws)
	if p.OverProvisionR <= 0 || p.OverProvisionR >= 1 {
		t.Fatalf("AutoR produced implausible R = %v", p.OverProvisionR)
	}
	if res.UnsatSteps != 0 {
		t.Fatalf("auto-R run left %d steps unsatisfied", res.UnsatSteps)
	}
}

func TestChurnAccounting(t *testing.T) {
	a := Allocation{}
	a.add("T2", "A", 5)
	a.add("T3", "A", 2)
	b := Allocation{}
	b.add("T2", "A", 3) // released 2
	b.add("T3", "A", 4) // activated 2
	b.add("T7", "B", 1) // activated 1
	act, rel := churn(a, b)
	if act != 3 || rel != 2 {
		t.Fatalf("churn = (%d, %d), want (3, 2)", act, rel)
	}
}

func TestRunTracksChurn(t *testing.T) {
	table := fig8Table()
	fleet := fig8Fleet()
	ws := []Workload{
		{Model: "DLRM-RMC1", Trace: workload.Synthesize(workload.DefaultDiurnal("rmc1", 20000, 1, 40))},
		{Model: "DLRM-RMC2", Trace: workload.Synthesize(workload.DefaultDiurnal("rmc2", 15000, 1, 41))},
	}
	res := NewProvisioner(fleet, table, Hercules, 42).Run(ws)
	if res.Activations <= 0 || res.Releases <= 0 {
		t.Fatalf("diurnal load must churn servers: %d/%d", res.Activations, res.Releases)
	}
	if res.SetupOverheadS != float64(res.Activations)*WorkloadSetupS {
		t.Fatal("setup overhead must integrate activations")
	}
	// Across a full diurnal day, servers activated on the ramp up are
	// released on the way down: churn magnitudes should be comparable.
	ratio := float64(res.Activations) / float64(res.Releases)
	if ratio < 0.5 || ratio > 2 {
		t.Errorf("activation/release ratio %.2f implausible", ratio)
	}
}
