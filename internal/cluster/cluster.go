package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"hercules/internal/hw"
	"hercules/internal/lp"
	"hercules/internal/profiler"
	"hercules/internal/stats"
	"hercules/internal/workload"
)

// Policy selects the provisioning algorithm.
type Policy int

// Provisioning policies.
const (
	NH Policy = iota
	Greedy
	Priority
	Hercules
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case NH:
		return "NH"
	case Greedy:
		return "greedy"
	case Priority:
		return "priority"
	case Hercules:
		return "hercules"
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// PolicyNames lists the provisioning policies in presentation order,
// spelled the way ParsePolicy accepts them.
var PolicyNames = []string{"nh", "greedy", "priority", "hercules"}

// ParsePolicy resolves a provisioning policy by name (the serializable
// policy reference run specs and CLI -policy flags share).
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "nh":
		return NH, nil
	case "greedy":
		return Greedy, nil
	case "priority":
		return Priority, nil
	case "hercules":
		return Hercules, nil
	}
	return 0, fmt.Errorf("cluster: unknown policy %q (policies: %s)",
		s, strings.Join(PolicyNames, ", "))
}

// Workload pairs a model name with its diurnal load trace.
type Workload struct {
	Model string
	Trace workload.DiurnalTrace
}

// Allocation maps serverType → model → activated server count.
type Allocation map[string]map[string]int

// add activates n servers of type h for model m.
func (a Allocation) add(h, m string, n int) {
	if a[h] == nil {
		a[h] = make(map[string]int)
	}
	a[h][m] += n
}

// Total returns the number of activated servers.
func (a Allocation) Total() int {
	sum := 0
	for _, row := range a {
		for _, n := range row {
			sum += n
		}
	}
	return sum
}

// CountFor returns the servers of type h activated (across models).
func (a Allocation) CountFor(h string) int {
	sum := 0
	for _, n := range a[h] {
		sum += n
	}
	return sum
}

// Provisioner drives one policy over a fleet.
type Provisioner struct {
	Fleet hw.Fleet
	Table *profiler.Table
	Kind  Policy
	// OverProvisionR is the load headroom R of Equation (2) (e.g. 0.05
	// = 5% above the instantaneous load).
	OverProvisionR float64
	// NaiveCeil switches the LP integerization from greedy repair to
	// naive per-variable ceiling (DESIGN.md ablation #3).
	NaiveCeil bool
	// AutoR estimates OverProvisionR from the traces at the start of a
	// Run (§IV-C's history-profiled headroom).
	AutoR bool
	// Unavailable marks servers the control plane knows to be down
	// (serverType → count); they are subtracted from every policy's
	// availability. The fleet engine sets this from scenario failure
	// events so re-provisioning happens against the degraded fleet.
	Unavailable map[string]int
	rng         *rand.Rand
}

// NewProvisioner builds a provisioner; seed drives the random
// arbitration of the NH and Greedy policies.
func NewProvisioner(fleet hw.Fleet, table *profiler.Table, kind Policy, seed int64) *Provisioner {
	return &Provisioner{
		Fleet:          fleet,
		Table:          table,
		Kind:           kind,
		OverProvisionR: 0.05,
		rng:            stats.NewRand(seed),
	}
}

// StepResult is the provisioning decision for one interval.
type StepResult struct {
	TimeS             float64
	Alloc             Allocation
	ActiveServers     int
	ProvisionedPowerW float64
	// Satisfied reports whether every workload's target capacity was met.
	Satisfied bool
	// ServedQPS / TargetQPS per model.
	ServedQPS map[string]float64
	TargetQPS map[string]float64
}

// Step provisions for the given instantaneous loads (QPS per model).
func (p *Provisioner) Step(loads map[string]float64) StepResult {
	target := make(map[string]float64, len(loads))
	for m, l := range loads {
		target[m] = l * (1 + p.OverProvisionR)
	}
	var alloc Allocation
	switch p.Kind {
	case NH:
		alloc = p.allocNH(target)
	case Greedy:
		alloc = p.allocGreedy(target, false)
	case Priority:
		alloc = p.allocGreedy(target, true)
	case Hercules:
		alloc = p.allocLP(target)
	default:
		alloc = Allocation{}
	}
	return p.finishStep(alloc, target)
}

func (p *Provisioner) finishStep(alloc Allocation, target map[string]float64) StepResult {
	res := StepResult{
		Alloc:     alloc,
		ServedQPS: make(map[string]float64),
		TargetQPS: target,
		Satisfied: true,
	}
	for _, h := range sortedKeys(alloc) {
		row := alloc[h]
		for _, m := range sortedKeys(row) {
			n := row[m]
			e := p.Table.MustGet(h, m)
			res.ServedQPS[m] += float64(n) * e.QPS
			res.ProvisionedPowerW += float64(n) * e.PowerW
			res.ActiveServers += n
		}
	}
	for m, t := range target {
		if res.ServedQPS[m] < t-1e-6 {
			res.Satisfied = false
		}
	}
	return res
}

// sortedKeys returns a string-keyed map's keys in sorted order: float
// accumulation and tie-breaking must never depend on map iteration, or
// identical seeds produce allocations that differ by one ULP's worth
// of decision.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// modelNames returns the workload names sorted for determinism.
func modelNames(target map[string]float64) []string {
	return sortedKeys(target)
}

// allocNH randomly assigns available servers until each load is met,
// ignoring heterogeneity (the NH baseline).
func (p *Provisioner) allocNH(target map[string]float64) Allocation {
	alloc := Allocation{}
	avail := p.availability()
	// Flatten the fleet into a shuffled deck of server slots.
	var deck []string
	for _, srv := range p.Fleet.Types {
		for i := 0; i < avail[srv.Type]; i++ {
			deck = append(deck, srv.Type)
		}
	}
	p.rng.Shuffle(len(deck), func(i, j int) { deck[i], deck[j] = deck[j], deck[i] })

	remaining := make(map[string]float64, len(target))
	for m, t := range target {
		remaining[m] = t
	}
	names := modelNames(target)
	for _, h := range deck {
		// Serve the workload with the largest unmet load this server can
		// actually serve.
		bestM, bestRem := "", 0.0
		for _, m := range names {
			if remaining[m] <= 0 {
				continue
			}
			if e, ok := p.Table.Get(h, m); ok && e.QPS > 0 && remaining[m] > bestRem {
				bestM, bestRem = m, remaining[m]
			}
		}
		if bestM == "" {
			continue
		}
		e := p.Table.MustGet(h, bestM)
		alloc.add(h, bestM, 1)
		remaining[bestM] -= e.QPS
	}
	return alloc
}

// allocGreedy is the heterogeneity-aware greedy scheduler of [8,9]:
// workloads take servers from their QPS/W ranking, best first. With
// priority=false, competing workloads are arbitrated in random order
// each round (the paper's criticism); with priority=true, the workload
// with the larger efficiency *gain* on the contended type goes first
// (the §III-C priority-aware scheduler).
func (p *Provisioner) allocGreedy(target map[string]float64, priority bool) Allocation {
	alloc := Allocation{}
	avail := p.availability()
	remaining := make(map[string]float64, len(target))
	for m, t := range target {
		remaining[m] = t
	}
	names := modelNames(target)
	rank := make(map[string][]string, len(names))
	for _, m := range names {
		rank[m] = p.Table.RankServers(m)
	}
	gain := func(m string) float64 {
		// Efficiency improvement ratio of the model's best available
		// type over its fallback (worst-ranked available) type — the
		// paper's "higher energy efficiency improvement" criterion
		// (Fig. 8a: NMP buys RMC2 2.04× vs RMC1's 1.75×).
		var first, last float64
		for _, h := range rank[m] {
			if avail[h] > 0 {
				if e, ok := p.Table.Get(h, m); ok && e.QPS > 0 {
					if first == 0 {
						first = e.QPSPerWatt
					}
					last = e.QPSPerWatt
				}
			}
		}
		if last == 0 {
			return 0
		}
		return first / last
	}
	// assignOne gives workload m its best available server; reports
	// whether any server could be assigned. In priority mode a residual
	// demand smaller than one best-type server is served by the cheapest
	// sufficient server instead — burning a scarce accelerator on a
	// crumb of load wastes the type for the other workloads.
	assignOne := func(m string) bool {
		if priority {
			var bestH string
			bestPower := 0.0
			for _, h := range rank[m] {
				if avail[h] == 0 {
					continue
				}
				e, ok := p.Table.Get(h, m)
				if !ok || e.QPS <= 0 {
					continue
				}
				if e.QPS >= remaining[m] {
					// Sufficient alone: candidate by absolute power.
					if bestH == "" || e.PowerW < bestPower {
						bestH, bestPower = h, e.PowerW
					}
				} else if bestH == "" {
					// Highest-ranked insufficient server is the fallback.
					bestH, bestPower = h, e.PowerW
					break
				}
			}
			if bestH == "" {
				return false
			}
			e := p.Table.MustGet(bestH, m)
			alloc.add(bestH, m, 1)
			avail[bestH]--
			remaining[m] -= e.QPS
			return true
		}
		for _, h := range rank[m] {
			if avail[h] == 0 {
				continue
			}
			e, ok := p.Table.Get(h, m)
			if !ok || e.QPS <= 0 {
				continue
			}
			alloc.add(h, m, 1)
			avail[h]--
			remaining[m] -= e.QPS
			return true
		}
		return false
	}
	for {
		var order []string
		for _, m := range names {
			if remaining[m] > 0 {
				order = append(order, m)
			}
		}
		if len(order) == 0 {
			return alloc
		}
		progress := false
		if priority {
			// One server at a time to the workload with the largest
			// efficiency gain on its current best type: the higher-gain
			// workload exhausts the contended type before others touch it.
			sort.SliceStable(order, func(i, j int) bool { return gain(order[i]) > gain(order[j]) })
			progress = assignOne(order[0])
			if !progress && len(order) > 1 {
				for _, m := range order[1:] {
					if assignOne(m) {
						progress = true
						break
					}
				}
			}
		} else {
			// Random round-robin arbitration (the paper's greedy [8,9]).
			p.rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
			for _, m := range order {
				if remaining[m] <= 0 {
					continue
				}
				if assignOne(m) {
					progress = true
				}
			}
		}
		if !progress {
			return alloc // fleet exhausted
		}
	}
}

// allocLP solves the provisioning LP of Equations (1)–(3) and repairs
// the relaxation to integers.
func (p *Provisioner) allocLP(target map[string]float64) Allocation {
	names := modelNames(target)
	types := p.Fleet.Types
	nv := len(types) * len(names)
	varIdx := func(h, m int) int { return h*len(names) + m }

	prob := lp.Problem{C: make([]float64, nv)}
	qps := make([]float64, nv)
	for h, srv := range types {
		for m, name := range names {
			e, ok := p.Table.Get(srv.Type, name)
			j := varIdx(h, m)
			if ok && e.QPS > 0 {
				prob.C[j] = e.PowerW
				qps[j] = e.QPS
			} else {
				// Unservable pair: prohibitively expensive, zero capacity.
				prob.C[j] = 1e12
				qps[j] = 0
			}
		}
	}
	// Load constraints (Equation 2).
	for m, name := range names {
		row := make([]float64, nv)
		for h := range types {
			row[varIdx(h, m)] = qps[varIdx(h, m)]
		}
		prob.A = append(prob.A, row)
		prob.B = append(prob.B, target[name])
		prob.Rel = append(prob.Rel, lp.GE)
	}
	// Availability constraints (Equation 3), net of known-down servers.
	availNow := p.availability()
	for h := range types {
		row := make([]float64, nv)
		for m := range names {
			row[varIdx(h, m)] = 1
		}
		prob.A = append(prob.A, row)
		prob.B = append(prob.B, float64(availNow[types[h].Type]))
		prob.Rel = append(prob.Rel, lp.LE)
	}

	sol, err := lp.Solve(prob)
	if err != nil || sol.Status != lp.Optimal {
		// Fleet cannot satisfy the loads (e.g. late model evolution):
		// fall back to priority-greedy best effort.
		return p.allocGreedy(target, true)
	}

	// Integral repair: floor the relaxation (or ceil it under the naive
	// ablation mode), then greedily add servers (cheapest power per unit
	// of remaining demand) until targets are met.
	alloc := Allocation{}
	avail := p.availability()
	remaining := make(map[string]float64, len(names))
	for _, name := range names {
		remaining[name] = target[name]
	}
	for h, srv := range types {
		for m, name := range names {
			x := sol.X[varIdx(h, m)]
			n := int(x + 1e-9)
			if p.NaiveCeil && x > 1e-9 && x > float64(n) {
				n++
			}
			if n <= 0 {
				continue
			}
			if n > avail[srv.Type] {
				n = avail[srv.Type]
			}
			if n > 0 {
				alloc.add(srv.Type, name, n)
				avail[srv.Type] -= n
				remaining[name] -= float64(n) * qps[varIdx(h, m)]
			}
		}
	}
	for _, name := range names {
		for remaining[name] > 1e-9 {
			// Prefer the cheapest *sufficient* server for the residual;
			// fall back to the best power-per-QPS when no single server
			// covers it. (A fractional LP variable wastes nothing; an
			// integral server does, so the last server is chosen by
			// absolute power.)
			bestH, bestCost := -1, 0.0
			sufficient := false
			for h, srv := range types {
				if avail[srv.Type] == 0 {
					continue
				}
				e, ok := p.Table.Get(srv.Type, name)
				if !ok || e.QPS <= 0 {
					continue
				}
				if e.QPS >= remaining[name] {
					if !sufficient || e.PowerW < bestCost {
						bestH, bestCost, sufficient = h, e.PowerW, true
					}
				} else if !sufficient {
					cost := e.PowerW / e.QPS
					if bestH < 0 || cost < bestCost {
						bestH, bestCost = h, cost
					}
				}
			}
			if bestH < 0 {
				break // fleet exhausted
			}
			srvType := types[bestH].Type
			e := p.Table.MustGet(srvType, name)
			alloc.add(srvType, name, 1)
			avail[srvType]--
			remaining[name] -= e.QPS
		}
	}
	p.trim(alloc, target)
	// The LP relaxation is optimal, but integral repair can leave a
	// rounding gap; the priority-greedy heuristic is integral by
	// construction. Keep whichever integral plan provisions less power
	// (ties broken toward fewer servers) — the optimizer must never do
	// worse than the heuristic it replaces.
	if alt := p.allocGreedy(copyTarget(target), true); betterAlloc(p, alt, alloc, target) {
		return alt
	}
	return alloc
}

// copyTarget clones the target map (allocGreedy mutates its remaining
// copy, not the input, but the LP path reuses target afterwards).
func copyTarget(target map[string]float64) map[string]float64 {
	out := make(map[string]float64, len(target))
	for k, v := range target {
		out[k] = v
	}
	return out
}

// betterAlloc reports whether allocation a beats b: both must satisfy
// the targets they can; lower provisioned power wins, then fewer
// servers.
func betterAlloc(p *Provisioner, a, b Allocation, target map[string]float64) bool {
	power := func(al Allocation) (watts float64, servers int, unmet float64) {
		served := make(map[string]float64)
		for _, h := range sortedKeys(al) {
			row := al[h]
			for _, m := range sortedKeys(row) {
				n := row[m]
				e := p.Table.MustGet(h, m)
				watts += float64(n) * e.PowerW
				servers += n
				served[m] += float64(n) * e.QPS
			}
		}
		for _, m := range modelNames(target) {
			if served[m] < target[m] {
				unmet += target[m] - served[m]
			}
		}
		return watts, servers, unmet
	}
	aw, as, au := power(a)
	bw, bs, bu := power(b)
	if au != bu {
		return au < bu // feasibility first
	}
	if aw != bw {
		return aw < bw
	}
	return as < bs
}

// trim removes servers the allocation does not need: integral rounding
// can leave a workload over-covered by more than one server's capacity.
// The most power-hungry redundancy goes first.
func (p *Provisioner) trim(alloc Allocation, target map[string]float64) {
	served := make(map[string]float64)
	for _, h := range sortedKeys(alloc) {
		row := alloc[h]
		for _, m := range sortedKeys(row) {
			e := p.Table.MustGet(h, m)
			served[m] += float64(row[m]) * e.QPS
		}
	}
	for _, m := range modelNames(target) {
		t := target[m]
		for {
			bestH := ""
			bestPower := 0.0
			for _, h := range sortedKeys(alloc) {
				n := alloc[h][m]
				if n <= 0 {
					continue
				}
				e := p.Table.MustGet(h, m)
				if served[m]-e.QPS >= t && e.PowerW > bestPower {
					bestH, bestPower = h, e.PowerW
				}
			}
			if bestH == "" {
				break
			}
			e := p.Table.MustGet(bestH, m)
			alloc[bestH][m]--
			if alloc[bestH][m] == 0 {
				delete(alloc[bestH], m)
			}
			served[m] -= e.QPS
		}
	}
}

// availability returns the fleet counts minus known-down servers.
func (p *Provisioner) availability() map[string]int {
	out := make(map[string]int, len(p.Fleet.Types))
	for i, srv := range p.Fleet.Types {
		out[srv.Type] = max(p.Fleet.Counts[i]-p.Unavailable[srv.Type], 0)
	}
	return out
}

// RunResult aggregates a provisioning run over a trace.
type RunResult struct {
	Policy Policy
	Steps  []StepResult

	PeakPowerW    float64
	AvgPowerW     float64
	PeakServers   int
	AvgServers    float64
	UnsatSteps    int
	TotalEnergyKJ float64 // provisioned power integrated over the run
	// Activations/Releases count per-(type, workload) server churn
	// between consecutive intervals. The paper provisions at coarse
	// intervals precisely to amortize the tens of seconds of workload
	// setup each activation costs; SetupOverheadS aggregates that cost.
	Activations, Releases int
	SetupOverheadS        float64
}

// WorkloadSetupS is the per-activation workload setup time (§IV-C:
// "10s of seconds" to load a model and warm a server).
const WorkloadSetupS = 30.0

// churn compares consecutive allocations and counts servers that were
// activated (or re-targeted to a new workload) and released.
func churn(prev, cur Allocation) (activated, released int) {
	for h, row := range cur {
		for m, n := range row {
			if d := n - prev[h][m]; d > 0 {
				activated += d
			}
		}
	}
	for h, row := range prev {
		for m, n := range row {
			if d := n - cur[h][m]; d > 0 {
				released += d
			}
		}
	}
	return activated, released
}

// Run provisions every interval of the workloads' (aligned) traces.
// With AutoR set, the over-provision rate is first estimated from the
// traces themselves (§IV-C: R covers the historical load increase over
// one re-provisioning interval).
func (p *Provisioner) Run(ws []Workload) RunResult {
	res := RunResult{Policy: p.Kind}
	if len(ws) == 0 {
		return res
	}
	if p.AutoR {
		r := 0.0
		for _, w := range ws {
			if est := workload.EstimateOverProvisionR(w.Trace, w.Trace.StepS); est > r {
				r = est
			}
		}
		p.OverProvisionR = r
	}
	steps := ws[0].Trace.Steps()
	stepS := ws[0].Trace.StepS
	for _, w := range ws[1:] {
		if w.Trace.Steps() < steps {
			steps = w.Trace.Steps()
		}
	}
	var powerSum float64
	var serverSum float64
	var prev Allocation
	for i := 0; i < steps; i++ {
		loads := make(map[string]float64, len(ws))
		for _, w := range ws {
			loads[w.Model] += w.Trace.LoadsQPS[i]
		}
		sr := p.Step(loads)
		sr.TimeS = float64(i) * stepS
		res.Steps = append(res.Steps, sr)
		if prev != nil {
			a, rl := churn(prev, sr.Alloc)
			res.Activations += a
			res.Releases += rl
		}
		prev = sr.Alloc
		powerSum += sr.ProvisionedPowerW
		serverSum += float64(sr.ActiveServers)
		if sr.ProvisionedPowerW > res.PeakPowerW {
			res.PeakPowerW = sr.ProvisionedPowerW
		}
		if sr.ActiveServers > res.PeakServers {
			res.PeakServers = sr.ActiveServers
		}
		if !sr.Satisfied {
			res.UnsatSteps++
		}
		res.TotalEnergyKJ += sr.ProvisionedPowerW * stepS / 1e3
	}
	if steps > 0 {
		res.AvgPowerW = powerSum / float64(steps)
		res.AvgServers = serverSum / float64(steps)
	}
	res.SetupOverheadS = float64(res.Activations) * WorkloadSetupS
	return res
}

// Saving reports the relative peak and average provisioned-power savings
// of run b over run a: (a-b)/a.
func Saving(a, b RunResult) (peakFrac, avgFrac float64) {
	if a.PeakPowerW > 0 {
		peakFrac = (a.PeakPowerW - b.PeakPowerW) / a.PeakPowerW
	}
	if a.AvgPowerW > 0 {
		avgFrac = (a.AvgPowerW - b.AvgPowerW) / a.AvgPowerW
	}
	return peakFrac, avgFrac
}

// CapacitySaving reports the relative peak and average activated-server
// savings of run b over run a.
func CapacitySaving(a, b RunResult) (peakFrac, avgFrac float64) {
	if a.PeakServers > 0 {
		peakFrac = float64(a.PeakServers-b.PeakServers) / float64(a.PeakServers)
	}
	if a.AvgServers > 0 {
		avgFrac = (a.AvgServers - b.AvgServers) / a.AvgServers
	}
	return peakFrac, avgFrac
}
