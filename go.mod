module hercules

go 1.24
