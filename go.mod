module hercules

go 1.23
