// Package hercules is a simulation-based reproduction of "Hercules:
// Heterogeneity-Aware Inference Serving for At-Scale Personalized
// Recommendation" (HPCA 2022).
//
// The public surface of this repository is organised as:
//
//   - internal/model      — the Table I recommendation-model zoo and op-graph IR
//   - internal/hw         — the Table II heterogeneous server types T1–T10
//   - internal/workload   — query, pooling and diurnal-load generators
//   - internal/costmodel  — CPU roofline / GPU kernel / NMP cost models
//   - internal/nmpsim     — bank-level near-memory-processing simulator + LUT
//   - internal/sim        — the per-server serving simulator
//   - internal/sched      — Algorithm 1 gradient search and baselines
//   - internal/partition  — locality-aware hot-embedding partitioning
//   - internal/profiler   — offline profiling (the Fig. 9b efficiency table)
//   - internal/lp         — two-phase simplex solver
//   - internal/cluster    — online heterogeneity-aware provisioning
//   - internal/fleet      — request-level fleet replay: routing, queues, autoscaling
//   - internal/scenario   — non-stationary traffic/fault scenarios (flash
//     crowds, regional shifts, failures, derates, shedding)
//   - internal/experiments — one driver per paper table/figure
//
// The benchmark harness in bench_test.go regenerates every table and
// figure of the paper's evaluation; see EXPERIMENTS.md for the
// paper-vs-measured record, ARCHITECTURE.md for the data-flow map, and
// README.md for a tour.
package hercules
